//! `TransactionalMultiset` — a counted bag with semantic concurrency
//! control, built on the kernel with **synthesized** locks.
//!
//! The multiset is the map specialized to element counts: `add` is a blind
//! buffered increment (commutes with every other add, like the histogram
//! example), `remove_one` observes the element's count before decrementing
//! (so it both holds a key lock and publishes a key write), `count`
//! observes one element, `len` observes the total cardinality (sum of
//! counts — the `Size` mode), and `is_empty` is the §5.1 zero-crossing
//! primitive. No hand-written mode table exists for this class: the lock
//! modes come from [`MULTISET_CONFLICT_GRAPH`], validated against the
//! dispatch matrix at construction.

// txlint: semantic-tables
// txlint: fast-path
use crate::backend::MapBackend;
use crate::conflict_graph::{edge, op, ConflictGraph, Overlap};
use crate::kernel::{CachedPoint, ClassTables, SemanticClass, SemanticCore};
use crate::locks::{ObsMode, SemanticStats, UpdateEffect, DEFAULT_STRIPES};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use stm::{TVar, Txn, TxnMode};
use txstruct::{BoostedHashMap, TxHashMap};

// txlint: conflict-graph
/// The multiset's declared conflict graph. `add` is blind (no observation
/// modes); `remove_one` reads the element's count before decrementing, so
/// it is both a key observer and a key writer and needs the reflexive
/// self-edge; `len` and `is_empty` are the whole-collection cardinality
/// observers.
pub static MULTISET_CONFLICT_GRAPH: ConflictGraph<'static> = ConflictGraph {
    class: "multiset",
    ops: &[
        op(
            "add",
            &[],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
            ],
        ),
        op(
            "remove_one",
            &[ObsMode::Key],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
            ],
        ),
        op("count", &[ObsMode::Key], &[]),
        op("len", &[ObsMode::Size], &[]),
        op("is_empty_primitive", &[ObsMode::Empty], &[]),
    ],
    edges: &[
        // Count observers vs writes of the same element; distinct elements
        // commute (blind adds never conflict with each other).
        edge(
            "count",
            "add",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "count",
            "remove_one",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove_one",
            "add",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove_one",
            "remove_one",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        // Total-cardinality observers vs any count change.
        edge(
            "len",
            "add",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "len",
            "remove_one",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        // Emptiness primitive vs zero-crossings of the total count.
        edge(
            "is_empty_primitive",
            "add",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "is_empty_primitive",
            "remove_one",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
    ],
};

/// Per-transaction local state: buffered count deltas, the element locks
/// this transaction holds, and the buffered change to the total count.
pub(crate) struct MultisetLocal<T> {
    pub deltas: HashMap<T, i64>,
    pub key_locks: HashSet<T>,
    pub total_delta: i64,
}

impl<T> Default for MultisetLocal<T> {
    fn default() -> Self {
        MultisetLocal {
            deltas: HashMap::new(),
            key_locks: HashSet::new(),
            total_delta: 0,
        }
    }
}

/// The variant half of the multiset class: count-valued backend, the total
/// counter, and the striped lock tables.
pub(crate) struct MultisetClass<T, B> {
    pub(crate) backend: B,
    pub(crate) total: TVar<u64>,
    pub(crate) tables: ClassTables<T>,
}

impl<T, B> SemanticClass for MultisetClass<T, B>
where
    T: Clone + Eq + Hash + Send + Sync + 'static,
    B: MapBackend<T, u64>,
{
    type Local = MultisetLocal<T>;
    type Undo = ();

    fn name(&self) -> &'static str {
        "multiset"
    }

    fn conflict_graph(&self) -> Option<&'static ConflictGraph<'static>> {
        Some(&MULTISET_CONFLICT_GRAPH)
    }

    /// See `MapClass::snapshot_capable`: versioned (TVar) backends serve
    /// snapshot reads, non-transactional ones fall back.
    fn snapshot_capable(&self) -> bool {
        <B as crate::backend::MapReadOps<T, u64>>::TRANSACTIONAL_READS
    }

    /// Commit handler: apply the buffered count deltas (clamped at zero —
    /// visibility was checked under the element lock, so a negative clamp
    /// only fires for doomed racers), doom observers of each changed
    /// element, then publish the total-count change in the global stripe.
    fn apply(&self, local: MultisetLocal<T>, htx: &mut Txn, id: u64, stats: &SemanticStats) {
        let total_before = self.total.read(htx);
        let mut applied: i64 = 0;
        let global = self.tables.commit_sweep(
            stats,
            id,
            local.deltas.iter(),
            local.key_locks.iter(),
            |k, &d, cx| {
                if d == 0 {
                    return;
                }
                let cur = self.backend.get(htx, k).unwrap_or(0) as i64;
                let new = (cur + d).max(0);
                if new != cur {
                    if new == 0 {
                        let _ = self.backend.remove(htx, k);
                    } else {
                        let _ = self.backend.insert(htx, k.clone(), new as u64);
                    }
                    applied += new - cur;
                    cx.doom(UpdateEffect::KeyWrite, k);
                }
            },
        );
        let total_after = ((total_before as i64) + applied).max(0) as u64;
        if total_after != total_before {
            self.total.write(htx, total_after);
        }
        global.finish(|g| {
            if total_after != total_before {
                g.doom(UpdateEffect::SizeChange);
                if (total_before == 0) != (total_after == 0) {
                    g.doom(UpdateEffect::ZeroCross);
                }
            }
        });
    }

    /// Abort handler: writes were only buffered — pure lock release.
    fn release(&self, local: MultisetLocal<T>, _htx: &mut Txn, id: u64, stats: &SemanticStats) {
        self.tables.release_sweep(stats, id, local.key_locks.iter());
    }
}

/// A transactional multiset (counted bag) with synthesized semantic locks.
///
/// ```
/// use stm::atomic;
/// use txcollections::TransactionalMultiset;
///
/// let bag: TransactionalMultiset<&'static str> = TransactionalMultiset::new();
/// atomic(|tx| {
///     bag.add(tx, "a");
///     bag.add(tx, "a");
///     assert_eq!(bag.count(tx, &"a"), 2);
/// });
/// ```
pub struct TransactionalMultiset<T, B = TxHashMap<T, u64>>
where
    T: Clone + Eq + Hash + Send + Sync + 'static,
    B: MapBackend<T, u64>,
{
    core: SemanticCore<MultisetClass<T, B>>,
}

impl<T, B> Clone for TransactionalMultiset<T, B>
where
    T: Clone + Eq + Hash + Send + Sync + 'static,
    B: MapBackend<T, u64>,
{
    fn clone(&self) -> Self {
        TransactionalMultiset {
            core: self.core.clone(),
        }
    }
}

impl<T> TransactionalMultiset<T, TxHashMap<T, u64>>
where
    T: Clone + Eq + Hash + Send + Sync + 'static,
{
    /// Create a multiset over a fresh count-valued [`TxHashMap`].
    pub fn new() -> Self {
        Self::wrap(TxHashMap::new())
    }

    /// Create with an explicit lock-table stripe count (rounded up to a
    /// power of two; `1` recovers the unstriped design).
    pub fn with_stripes(nstripes: usize) -> Self {
        Self::wrap_with_stripes(TxHashMap::new(), nstripes)
    }
}

impl<T> TransactionalMultiset<T, BoostedHashMap<T, u64>>
where
    T: Clone + Eq + Hash + Send + Sync + 'static,
{
    /// Create over a fresh non-transactional [`BoostedHashMap`] (the
    /// boosted configuration; count cells live in the concurrent map, the
    /// `total` stays a TVar driven from the handler lane).
    pub fn boosted() -> Self {
        Self::wrap(BoostedHashMap::new())
    }
}

impl<T> Default for TransactionalMultiset<T, TxHashMap<T, u64>>
where
    T: Clone + Eq + Hash + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<T, B> TransactionalMultiset<T, B>
where
    T: Clone + Eq + Hash + Send + Sync + 'static,
    B: MapBackend<T, u64>,
{
    /// Wrap an existing count-valued backend.
    pub fn wrap(backend: B) -> Self {
        Self::wrap_with_stripes(backend, DEFAULT_STRIPES)
    }

    /// Wrap with an explicit stripe count.
    pub fn wrap_with_stripes(backend: B, nstripes: usize) -> Self {
        TransactionalMultiset {
            core: SemanticCore::new(
                MultisetClass {
                    backend,
                    total: TVar::new(0),
                    tables: ClassTables::new(nstripes),
                },
                nstripes,
            ),
        }
    }

    /// Semantic-conflict counters for this instance.
    pub fn semantic_stats(&self) -> &SemanticStats {
        self.core.stats()
    }

    /// Stripe count of the semantic lock table.
    pub fn stripe_count(&self) -> usize {
        self.core.class().tables.stripe_count()
    }

    fn assert_usable(tx: &Txn) {
        assert!(
            tx.mode() == TxnMode::Speculative,
            "TransactionalMultiset operations cannot run inside commit/abort handlers"
        );
    }

    fn with_local<R>(&self, tx: &Txn, f: impl FnOnce(&mut MultisetLocal<T>) -> R) -> R {
        self.core.with_local(tx, f)
    }

    fn take_key_lock(&self, tx: &mut Txn, value: &T) {
        if self.core.key_lock_cached(tx, value) {
            return;
        }
        let owner = tx.handle().clone();
        self.core
            .class()
            .tables
            .take_key_lock(self.core.stats(), value.clone(), owner);
        self.with_local(tx, |l| {
            l.key_locks.insert(value.clone());
        });
        self.core.note_key_lock(tx, value.clone());
    }

    /// Buffer a count delta with a local undo (closed-nested rollback).
    fn buffer_delta(&self, tx: &mut Txn, value: T, d: i64) {
        let id = tx.handle().id();
        self.with_local(tx, |l| {
            *l.deltas.entry(value.clone()).or_insert(0) += d;
            l.total_delta += d;
        });
        let core = self.core.clone();
        tx.on_local_undo(move || {
            core.update_local(id, |l| {
                *l.deltas.entry(value.clone()).or_insert(0) -= d;
                l.total_delta -= d;
            });
        });
    }

    /// Add one occurrence — a **blind** buffered increment: takes no
    /// semantic lock (nothing is observed), so concurrent adds always
    /// commute, even of the same element.
    pub fn add(&self, tx: &mut Txn, value: T) {
        self.add_n(tx, value, 1);
    }

    /// Add `n` occurrences (blind, buffered).
    pub fn add_n(&self, tx: &mut Txn, value: T, n: u64) {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        if n == 0 {
            return;
        }
        self.buffer_delta(tx, value, n as i64);
    }

    /// Visible count of `value` under this transaction's element lock:
    /// committed count (open-nested) plus the buffered delta.
    fn visible_count(&self, tx: &mut Txn, value: &T) -> i64 {
        self.take_key_lock(tx, value);
        let backend = &self.core.class().backend;
        let committed = tx.open_read(|otx| backend.get(otx, value)).unwrap_or(0) as i64;
        let delta = self
            .core
            .try_local(tx, |l| l.deltas.get(value).copied().unwrap_or(0))
            .unwrap_or(0);
        (committed + delta).max(0)
    }

    /// Remove one occurrence if present; returns whether one was removed.
    /// Observes the element's count (element lock) before decrementing, so
    /// it conflicts with any write of the same element — including another
    /// `remove_one` (the reflexive edge in the graph).
    pub fn remove_one(&self, tx: &mut Txn, value: &T) -> bool {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        if self.visible_count(tx, value) == 0 {
            return false;
        }
        self.buffer_delta(tx, value.clone(), -1);
        true
    }

    /// Number of occurrences of `value` (element lock).
    pub fn count(&self, tx: &mut Txn, value: &T) -> u64 {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        self.visible_count(tx, value) as u64
    }

    /// Whether at least one occurrence of `value` is visible.
    pub fn contains(&self, tx: &mut Txn, value: &T) -> bool {
        self.count(tx, value) > 0
    }

    /// Total number of occurrences across all elements (size lock:
    /// conflicts with any committing count change).
    pub fn len(&self, tx: &mut Txn) -> usize {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        if !self.core.point_lock_cached(tx, CachedPoint::Size) {
            let owner = tx.handle().clone();
            self.core
                .class()
                .tables
                .take_size_lock(self.core.stats(), owner);
            self.core.note_point_lock(tx, CachedPoint::Size);
        }
        let total = self.core.class().total.clone();
        let committed = tx.open_read(move |otx| total.read(otx)) as i64;
        let delta = self.core.try_local(tx, |l| l.total_delta).unwrap_or(0);
        (committed + delta).max(0) as usize
    }

    /// `len() == 0` via the size lock.
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.len(tx) == 0
    }

    /// Emptiness as a primitive with its own zero-crossing lock (§5.1):
    /// conflicts only when the total count moves to or from zero.
    pub fn is_empty_primitive(&self, tx: &mut Txn) -> bool {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        if !self.core.point_lock_cached(tx, CachedPoint::Empty) {
            let owner = tx.handle().clone();
            self.core
                .class()
                .tables
                .take_empty_lock(self.core.stats(), owner);
            self.core.note_point_lock(tx, CachedPoint::Empty);
        }
        let total = self.core.class().total.clone();
        let committed = tx.open_read(move |otx| total.read(otx)) as i64;
        let delta = self.core.try_local(tx, |l| l.total_delta).unwrap_or(0);
        (committed + delta) <= 0
    }

    /// Number of element locks currently registered (testing/diagnostics).
    pub fn locked_key_count(&self) -> usize {
        self.core.class().tables.locked_key_count(self.core.stats())
    }
}
