//! # txcollections — Transactional Collection Classes
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Transactional Collection Classes* (Carlstrom, McDonald, Carbin,
//! Kozyrakis, Olukotun — PPoPP 2007): collection wrappers that let
//! **long-running memory transactions** operate on shared data structures
//! without the unnecessary memory-level conflicts that data-structure
//! internals (hash-table size fields, tree rotations) otherwise cause —
//! while preserving atomicity, isolation and serializability at the level
//! of the *abstract data type*.
//!
//! ## The mechanism: semantic concurrency control via multi-level transactions
//!
//! * Reads of the underlying structure happen in **open-nested
//!   transactions** (no memory dependency in the parent) and take
//!   **semantic locks** on the abstract state they observed (a key, the
//!   size, a key range, an endpoint, emptiness).
//! * Writes are buffered in transaction-local state.
//! * A **commit handler** applies the buffer and *dooms* (program-directed
//!   abort) every transaction holding a semantic lock that the applied
//!   changes invalidate; an **abort handler** compensates, releasing locks
//!   and discarding buffers.
//!
//! Responsibility for isolation moves from the memory system to the
//! abstract data type — and because the wrapper still buffers writes until
//! commit, *multiple operations still compose atomically*, which plain open
//! nesting cannot offer.
//!
//! ## The classes
//!
//! | Type | Paper section | Semantic locks |
//! |------|---------------|----------------|
//! | [`TransactionalMap`] | §3.1 | key locks, size lock (+ `isEmpty` zero-crossing lock, §5.1) |
//! | [`TransactionalSortedMap`] | §3.2 | + range locks, first/last endpoint locks |
//! | [`TransactionalQueue`] | §3.3 | empty lock only (reduced isolation by design) |
//! | [`TransactionalSet`] / [`TransactionalSortedSet`] | §5.1 | via the maps |
//! | [`TransactionalMultiset`] | §5.1 extension | key locks, size lock, empty lock — **synthesized** |
//! | [`TransactionalPriorityQueue`] | §3.2 extension | key locks, first lock, size/empty locks — **synthesized** |
//! | [`TransactionalIntervalMap`] | §3.2 extension | range locks (span-valued), size/empty locks — **synthesized** |
//! | [`OpenNestedCounter`] / [`UidGenerator`] | §6.3 | none (isolation deliberately forgone) |
//!
//! ## Declarative conflict graphs
//!
//! Every class declares its operation-level conflict graph as plain data
//! ([`ConflictGraph`]): which abstract properties each operation observes
//! ([`ObsMode`]), which it updates ([`UpdateEffect`]), and which
//! observer/updater pairs conflict — point-wise ([`Overlap::OnOverlap`])
//! or unconditionally ([`Overlap::Always`]). The kernel *synthesizes* the
//! lock-mode compatibility matrix from these declarations
//! ([`synthesize`], [`generated_matrix`]) — [`mode_compatible`], the
//! single dispatch point for every doom decision, is now generated data,
//! while the original hand-written table survives as the oracle
//! ([`mode_compatible_spec`]) that the synthesized matrix is checked
//! against exhaustively (all 84 cells) in CI and at every core
//! construction. The three newest classes (multiset, priority queue,
//! interval map) never had a hand-written table at all: their locks exist
//! *only* because their declarations synthesize them.
//!
//! ## Serializability guidelines (paper §5)
//!
//! When building your own transactional class on these primitives (the
//! [`SemanticClass`] kernel discharges the registration/ordering
//! obligations for you — see that trait and `examples/custom_class.rs`):
//!
//! 1. Read underlying state only inside open-nested transactions that also
//!    take the appropriate semantic locks ([`stm::Txn::open`]).
//! 2. Write underlying state only from the commit handler — implement
//!    [`SemanticClass::apply`], which [`SemanticCore`] runs in direct mode
//!    under the handler lane, serialized with every other handler.
//! 3. Buffer writes in transaction-local state; if a write logically reads
//!    too (e.g. returns the old value), take the read's semantic lock.
//! 4. The abort handler must release semantic locks and clear local buffers
//!    — implement [`SemanticClass::release`]; [`SemanticCore`] registers
//!    the pair on first use.
//! 5. The commit handler must apply the buffer, doom conflicting lock
//!    holders, then behave like the abort handler (clear and release).
//!
//! Reduced isolation (when serializability is deliberately traded for
//! concurrency, as in [`TransactionalQueue`]) is obtained by violating rule
//! 2: writing underlying state from open-nested transactions, with abort
//! handlers as compensation.
//!
//! ## Example
//!
//! ```
//! use stm::atomic;
//! use txcollections::TransactionalMap;
//!
//! let map: TransactionalMap<String, u64> = TransactionalMap::new();
//! // A compound, atomic read-modify-write over two keys — scalable because
//! // transactions touching other keys do not conflict with this one.
//! atomic(|tx| {
//!     let a = map.get(tx, &"alice".to_string()).unwrap_or(0);
//!     map.put(tx, "alice".to_string(), a + 1);
//!     map.put_discard(tx, "last_writer".to_string(), 42);
//! });
//! ```

#![warn(missing_docs)]

mod backend;
mod conflict_graph;
mod eager_map;
pub mod interval;
mod interval_map;
mod kernel;
mod locks;
mod map;
mod multiset;
mod priority_queue;
mod queue;
mod set;
mod snapshot;
mod sorted_map;

pub use backend::{
    MapApplyOps, MapBackend, MapReadOps, MapUndo, QueueApplyOps, QueueBackend, QueueReadOps,
    SortedMapBackend, SortedReadOps, UndoOp,
};
pub use conflict_graph::{
    declared_graphs, derive_edges, edge, generated_matrix, keyed_mode, op, reachable_cells,
    synthesize, validate, ConflictGraph, EdgeDecl, OpDecl, Overlap, Synthesis, SynthesizedMatrix,
};
pub use eager_map::{EagerPolicy, EagerTransactionalMap, EAGER_MAP_CONFLICT_GRAPH};
pub use interval_map::{TransactionalIntervalMap, INTERVAL_MAP_CONFLICT_GRAPH};
pub use kernel::{
    CachedPoint, ClassTables, GlobalPhase, KeyCtx, PointCtx, SemanticClass, SemanticCore,
};
pub use locks::{
    key_hash64, mode_compatible, mode_compatible_spec, stripe_index, ObsMode, Owner,
    RangeIndexKind, SemanticStats, StripeHasher, UpdateEffect, DEFAULT_STRIPES,
};
pub use map::{TransactionalMap, TxMapIter, MAP_CONFLICT_GRAPH};
pub use multiset::{TransactionalMultiset, MULTISET_CONFLICT_GRAPH};
pub use priority_queue::{TransactionalPriorityQueue, PRIORITY_QUEUE_CONFLICT_GRAPH};
pub use queue::{Channel, TransactionalQueue, QUEUE_CONFLICT_GRAPH};
pub use set::{TransactionalSet, TransactionalSortedSet, SET_CONFLICT_GRAPH};
pub use sorted_map::{
    SortedMapView, TransactionalSortedMap, TxSortedIter, SORTED_MAP_CONFLICT_GRAPH,
};

use stm::Txn;

/// A shared counter whose updates run open-nested: parents carry no
/// dependency on it, trading serializability for scalability exactly as the
/// paper's SPECjbb "Atomos Open" configuration does for its global counters
/// (§6.3). Re-exported view over [`txstruct::TxCounter`].
#[derive(Clone, Default)]
pub struct OpenNestedCounter {
    counter: txstruct::TxCounter,
}

impl OpenNestedCounter {
    /// Create with an initial value.
    pub fn new(initial: i64) -> Self {
        OpenNestedCounter {
            counter: txstruct::TxCounter::new(initial),
        }
    }

    /// Open-nested add; returns the pre-add value. Aborted parents leave the
    /// increment in place (a gap).
    pub fn add(&self, tx: &mut Txn, delta: i64) -> i64 {
        self.counter.add_open(tx, delta)
    }

    /// Open-nested add with a compensating abort handler restoring the
    /// value (but not the ordering) on abort.
    pub fn add_compensated(&self, tx: &mut Txn, delta: i64) -> i64 {
        self.counter.add_open_compensated(tx, delta)
    }

    /// Committed value.
    pub fn get_committed(&self) -> i64 {
        self.counter.get_committed()
    }
}

/// A unique-id generator built on an open-nested counter: ids are unique and
/// monotonic in issue order, but aborted transactions leave gaps — the
/// database community's classic example of trading serializability for
/// concurrency (paper §1, citing Gray & Reuter).
#[derive(Clone, Default)]
pub struct UidGenerator {
    counter: txstruct::TxCounter,
}

impl UidGenerator {
    /// Create a generator starting at `first`.
    pub fn starting_at(first: i64) -> Self {
        UidGenerator {
            counter: txstruct::TxCounter::new(first),
        }
    }

    /// Draw the next unique id (open-nested: never a conflict source).
    pub fn next(&self, tx: &mut Txn) -> i64 {
        self.counter.next_uid(tx)
    }

    /// Fully serializable id draw for comparison: the parent transaction
    /// depends on the counter, making it a conflict hotspot.
    pub fn next_serializable(&self, tx: &mut Txn) -> i64 {
        self.counter.add(tx, 1)
    }

    /// The next id that would be issued (committed view).
    pub fn peek_committed(&self) -> i64 {
        self.counter.get_committed()
    }
}
