//! Declarative operation conflict graphs and the lock-synthesis engine.
//!
//! The paper's Tables 1–8 relate *operations* — `get(k)` vs `put(k, v)`,
//! `size()` vs `remove(k)` — and each collection class in this crate used
//! to re-derive the lock kinds and `(ObsMode, UpdateEffect)` dispatch for
//! its operations by hand. This module makes the conflict graph *data*:
//!
//! * a [`ConflictGraph`] declares the class's operations ([`OpDecl`]: which
//!   observation modes each op locks, which abstract effects it publishes)
//!   and the conflicting operation pairs ([`EdgeDecl`]: observer × updater
//!   → the `(mode, effect)` cell that makes them conflict, and whether the
//!   conflict requires key/range overlap);
//! * [`synthesize`] checks the declaration's soundness (symmetry of the
//!   compatibility relation, reflexive conflicts for mutating observers,
//!   closure under the paper's commutativity rules) and derives a
//!   [`SynthesizedMatrix`] plus the set of lock kinds the class needs;
//! * [`generated_matrix`] is the union of every in-tree class's synthesized
//!   matrix — the production [`mode_compatible`](crate::mode_compatible)
//!   dispatches through it, while the historic hand-written table survives
//!   as [`mode_compatible_spec`](crate::mode_compatible_spec), the oracle
//!   the synthesis is checked against (txlint's oracle pass and
//!   `crates/core/tests/conflict_graph_synthesis.rs` verify all 84 cells).
//!
//! Declarations are `static` plain data so the txlint TX010 pass can check
//! them *lexically* as well: files carrying the conflict-graph marker
//! comment get their `op(..)`/`edge(..)` tables re-validated without
//! running any code. (This file deliberately does *not* carry the marker:
//! its unit tests construct ill-formed graphs on purpose to exercise
//! [`validate`].)

use std::sync::OnceLock;

use crate::locks::{ObsMode, UpdateEffect};
use stm::trace::LockKind;

/// When a declared conflict applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Overlap {
    /// The operations conflict only when the update hits the observed key
    /// or range (keyed observation modes).
    OnOverlap,
    /// The operations conflict regardless of which key the update touches
    /// (whole-collection observation modes).
    Always,
}

/// One operation of a collection class, declared as data.
#[derive(Debug, Clone, Copy)]
pub struct OpDecl<'a> {
    /// Operation name (unique within the graph), e.g. `"get"`.
    pub name: &'a str,
    /// Observation modes the operation locks before reading.
    pub observes: &'a [ObsMode],
    /// Abstract effects the operation publishes at commit.
    pub effects: &'a [UpdateEffect],
}

/// One conflicting operation pair: `observer` (holding `obs`) is doomed by
/// a committing `updater` publishing `effect`.
#[derive(Debug, Clone, Copy)]
pub struct EdgeDecl<'a> {
    /// The observing (reader) operation's name.
    pub observer: &'a str,
    /// The committing (updater) operation's name.
    pub updater: &'a str,
    /// The observation mode through which the conflict is detected.
    pub obs: ObsMode,
    /// The update effect that invalidates the observation.
    pub effect: UpdateEffect,
    /// Whether the conflict requires key/range overlap.
    pub when: Overlap,
}

/// A collection class's full conflict declaration.
#[derive(Debug, Clone, Copy)]
pub struct ConflictGraph<'a> {
    /// Class name, e.g. `"map"` (matches [`SemanticClass::name`]).
    ///
    /// [`SemanticClass::name`]: crate::SemanticClass::name
    pub class: &'a str,
    /// The class's operations.
    pub ops: &'a [OpDecl<'a>],
    /// The conflicting operation pairs.
    pub edges: &'a [EdgeDecl<'a>],
}

/// Declare an operation (const-friendly constructor for `static` graphs).
pub const fn op<'a>(
    name: &'a str,
    observes: &'a [ObsMode],
    effects: &'a [UpdateEffect],
) -> OpDecl<'a> {
    OpDecl {
        name,
        observes,
        effects,
    }
}

/// Declare a conflict edge (const-friendly constructor for `static` graphs).
pub const fn edge<'a>(
    observer: &'a str,
    updater: &'a str,
    obs: ObsMode,
    effect: UpdateEffect,
    when: Overlap,
) -> EdgeDecl<'a> {
    EdgeDecl {
        observer,
        updater,
        obs,
        effect,
        when,
    }
}

/// A total `(mode, effect, overlap)` compatibility matrix synthesized from
/// one or more [`ConflictGraph`] declarations. Cells default to compatible;
/// declared edges mark cells conflicting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesizedMatrix {
    /// `conflicting[obs.code()][effect.code()][overlap as usize]`.
    conflicting: [[[bool; 2]; 6]; 7],
}

impl Default for SynthesizedMatrix {
    fn default() -> Self {
        SynthesizedMatrix::all_compatible()
    }
}

impl SynthesizedMatrix {
    /// The empty matrix: every cell compatible.
    pub fn all_compatible() -> SynthesizedMatrix {
        SynthesizedMatrix {
            conflicting: [[[false; 2]; 6]; 7],
        }
    }

    /// Mark a cell conflicting. `Always` edges conflict at both overlap
    /// values; `OnOverlap` edges only when the update hits the observed
    /// key/range.
    pub fn mark(&mut self, obs: ObsMode, effect: UpdateEffect, when: Overlap) {
        let (o, e) = (obs.code() as usize, effect.code() as usize);
        self.conflicting[o][e][1] = true;
        if when == Overlap::Always {
            self.conflicting[o][e][0] = true;
        }
    }

    /// The compatibility verdict for one cell (`true` = the operations
    /// commute; same contract as [`mode_compatible`](crate::mode_compatible)).
    pub fn compatible(&self, obs: ObsMode, effect: UpdateEffect, overlap: bool) -> bool {
        !self.conflicting[obs.code() as usize][effect.code() as usize][overlap as usize]
    }

    /// Union another matrix into this one (a cell conflicts if either
    /// operand says it does).
    pub fn merge(&mut self, other: &SynthesizedMatrix) {
        for o in 0..7 {
            for e in 0..6 {
                for v in 0..2 {
                    self.conflicting[o][e][v] |= other.conflicting[o][e][v];
                }
            }
        }
    }

    /// Every conflicting `(mode, effect, overlap)` cell.
    pub fn conflicting_cells(&self) -> Vec<(ObsMode, UpdateEffect, bool)> {
        let mut out = Vec::new();
        for o in ObsMode::ALL {
            for e in UpdateEffect::ALL {
                for ov in [false, true] {
                    if !self.compatible(o, e, ov) {
                        out.push((o, e, ov));
                    }
                }
            }
        }
        out
    }
}

/// The result of synthesizing a sound [`ConflictGraph`].
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The derived compatibility matrix.
    pub matrix: SynthesizedMatrix,
    /// The lock kinds the class needs, derived from the declared
    /// observation modes (sorted, deduplicated).
    pub lock_kinds: Vec<LockKind>,
}

fn find_op<'a, 'g>(graph: &'g ConflictGraph<'a>, name: &str) -> Option<&'g OpDecl<'a>> {
    graph.ops.iter().find(|o| o.name == name)
}

fn has_edge(
    graph: &ConflictGraph<'_>,
    observer: &str,
    updater: &str,
    m: ObsMode,
    e: UpdateEffect,
) -> bool {
    graph
        .edges
        .iter()
        .any(|d| d.observer == observer && d.updater == updater && d.obs == m && d.effect == e)
}

/// Whether an observation mode is keyed (per-key/per-range), i.e. has a
/// meaningful notion of overlap. Matches the production doom protocol's
/// overlap dispatch.
pub fn keyed_mode(m: ObsMode) -> bool {
    matches!(m, ObsMode::Key | ObsMode::Range)
}

/// Soundness-check a declaration. Returns one line per problem; empty means
/// the graph is well-formed and can be synthesized.
///
/// The checks mirror the paper's commutativity analysis:
///
/// 1. **Referential integrity** — op names unique; edges reference declared
///    ops; the edge's mode is among the observer's declared modes and its
///    effect among the updater's declared effects.
/// 2. **Commutativity closure** — keyed modes (`Key`, `Range`) conflict
///    only *on overlap* and only with `KeyWrite` (operations on distinct
///    keys commute, §3.1); whole-collection modes conflict regardless of
///    key, so an `OnOverlap` edge on them is ill-formed.
/// 3. **Symmetry** — compatibility is symmetric: if `(A observes m, B
///    publishes e)` conflicts and B also observes `m` while A also
///    publishes `e`, the mirrored edge must be declared.
/// 4. **Reflexivity** — a mutating observer self-conflicts: an op that both
///    observes `m` and publishes `e`, where the graph declares `(m, e)`
///    conflicting anywhere, must declare its own self-edge.
pub fn validate(graph: &ConflictGraph<'_>) -> Vec<String> {
    let mut errs = Vec::new();
    let class = graph.class;

    for (i, a) in graph.ops.iter().enumerate() {
        if graph.ops[..i].iter().any(|b| b.name == a.name) {
            errs.push(format!("{class}: duplicate op `{}`", a.name));
        }
    }

    for d in graph.edges {
        let Some(obs_op) = find_op(graph, d.observer) else {
            errs.push(format!(
                "{class}: edge references undeclared observer `{}`",
                d.observer
            ));
            continue;
        };
        let Some(upd_op) = find_op(graph, d.updater) else {
            errs.push(format!(
                "{class}: edge references undeclared updater `{}`",
                d.updater
            ));
            continue;
        };
        if !obs_op.observes.contains(&d.obs) {
            errs.push(format!(
                "{class}: edge `{}` vs `{}`: observer does not declare mode {:?}",
                d.observer, d.updater, d.obs
            ));
        }
        if !upd_op.effects.contains(&d.effect) {
            errs.push(format!(
                "{class}: edge `{}` vs `{}`: updater does not declare effect {:?}",
                d.observer, d.updater, d.effect
            ));
        }
        // Commutativity closure (paper §3.1): keyed observations conflict
        // only with an overlapping key write; whole-collection observations
        // conflict independent of key.
        match d.when {
            Overlap::OnOverlap => {
                if !keyed_mode(d.obs) {
                    errs.push(format!(
                        "{class}: edge `{}` vs `{}`: mode {:?} is whole-collection; overlap \
                         cannot gate the conflict (use Always)",
                        d.observer, d.updater, d.obs
                    ));
                }
                if d.effect != UpdateEffect::KeyWrite {
                    errs.push(format!(
                        "{class}: edge `{}` vs `{}`: overlap-gated conflicts must target a \
                         KeyWrite, got {:?}",
                        d.observer, d.updater, d.effect
                    ));
                }
            }
            Overlap::Always => {
                if keyed_mode(d.obs) {
                    errs.push(format!(
                        "{class}: edge `{}` vs `{}`: keyed mode {:?} conflicts only on \
                         overlap (operations on distinct keys commute); Always is ill-formed",
                        d.observer, d.updater, d.obs
                    ));
                }
            }
        }
        // Symmetry of the compatibility relation.
        if obs_op.effects.contains(&d.effect)
            && upd_op.observes.contains(&d.obs)
            && !has_edge(graph, d.updater, d.observer, d.obs, d.effect)
        {
            errs.push(format!(
                "{class}: asymmetric compatibility: `{}` vs `{}` declares ({:?}, {:?}) \
                 conflicting but the mirrored edge `{}` vs `{}` is missing",
                d.observer, d.updater, d.obs, d.effect, d.updater, d.observer
            ));
        }
    }

    // Reflexivity: mutating observers self-conflict on any cell the graph
    // declares conflicting.
    for o in graph.ops {
        for &m in o.observes {
            for &e in o.effects {
                let cell_conflicts = graph.edges.iter().any(|d| d.obs == m && d.effect == e);
                if cell_conflicts && !has_edge(graph, o.name, o.name, m, e) {
                    errs.push(format!(
                        "{class}: op `{}` observes {:?} and publishes {:?} — a cell this \
                         graph declares conflicting — but has no reflexive self-edge",
                        o.name, m, e
                    ));
                }
            }
        }
    }

    errs
}

/// Synthesize the compatibility matrix and lock kinds from a declaration.
/// Fails with the soundness-violation list if the graph is ill-formed.
pub fn synthesize(graph: &ConflictGraph<'_>) -> Result<Synthesis, Vec<String>> {
    let errs = validate(graph);
    if !errs.is_empty() {
        return Err(errs);
    }
    let mut matrix = SynthesizedMatrix::all_compatible();
    for d in graph.edges {
        matrix.mark(d.obs, d.effect, d.when);
    }
    let mut lock_kinds: Vec<LockKind> = graph
        .ops
        .iter()
        .flat_map(|o| o.observes.iter().map(|m| m.lock_kind()))
        .collect();
    lock_kinds.sort_by_key(|k| *k as u8);
    lock_kinds.dedup_by_key(|k| *k as u8);
    Ok(Synthesis { matrix, lock_kinds })
}

/// Every `(mode, effect, overlap)` cell some pair of the graph's declared
/// operations can reach: a declared observation mode crossed with a
/// declared effect, at both overlap values.
pub fn reachable_cells(graph: &ConflictGraph<'_>) -> Vec<(ObsMode, UpdateEffect, bool)> {
    let mut out = Vec::new();
    for m in ObsMode::ALL {
        if !graph.ops.iter().any(|o| o.observes.contains(&m)) {
            continue;
        }
        for e in UpdateEffect::ALL {
            if !graph.ops.iter().any(|o| o.effects.contains(&e)) {
                continue;
            }
            out.push((m, e, false));
            out.push((m, e, true));
        }
    }
    out
}

/// Re-derive the edge set from a matrix over a given op set: for every
/// observer mode × updater effect whose cell conflicts, emit the edge with
/// the overlap condition the matrix encodes. This is the closure of any
/// declaration that synthesizes to `matrix` — used by the round-trip
/// property test (`declaration → matrix → derived graph → same matrix`).
pub fn derive_edges<'a>(matrix: &SynthesizedMatrix, ops: &'a [OpDecl<'a>]) -> Vec<EdgeDecl<'a>> {
    let mut out = Vec::new();
    for a in ops {
        for &m in a.observes {
            for b in ops {
                for &e in b.effects {
                    let at_overlap = !matrix.compatible(m, e, true);
                    let at_no_overlap = !matrix.compatible(m, e, false);
                    let when = match (at_overlap, at_no_overlap) {
                        (true, true) => Overlap::Always,
                        (true, false) => Overlap::OnOverlap,
                        _ => continue,
                    };
                    if !out.iter().any(|d: &EdgeDecl<'a>| {
                        d.observer == a.name && d.updater == b.name && d.obs == m && d.effect == e
                    }) {
                        out.push(edge(a.name, b.name, m, e, when));
                    }
                }
            }
        }
    }
    out
}

/// The conflict graphs of every in-tree collection class, in registration
/// order. txlint's oracle pass re-validates each one and checks the union
/// against [`mode_compatible_spec`](crate::mode_compatible_spec).
pub fn declared_graphs() -> [&'static ConflictGraph<'static>; 8] {
    [
        &crate::map::MAP_CONFLICT_GRAPH,
        &crate::sorted_map::SORTED_MAP_CONFLICT_GRAPH,
        &crate::queue::QUEUE_CONFLICT_GRAPH,
        &crate::set::SET_CONFLICT_GRAPH,
        &crate::eager_map::EAGER_MAP_CONFLICT_GRAPH,
        &crate::multiset::MULTISET_CONFLICT_GRAPH,
        &crate::priority_queue::PRIORITY_QUEUE_CONFLICT_GRAPH,
        &crate::interval_map::INTERVAL_MAP_CONFLICT_GRAPH,
    ]
}

static GENERATED: OnceLock<SynthesizedMatrix> = OnceLock::new();

/// The production dispatch matrix: the union of every in-tree class's
/// synthesized matrix. [`mode_compatible`](crate::mode_compatible) looks
/// cells up here; the historic hand-written table remains available as
/// [`mode_compatible_spec`](crate::mode_compatible_spec) and the two are
/// checked identical on all 84 cells by txlint's oracle pass and the
/// exhaustive test suite.
pub fn generated_matrix() -> &'static SynthesizedMatrix {
    GENERATED.get_or_init(|| {
        let mut m = SynthesizedMatrix::all_compatible();
        for g in declared_graphs() {
            match synthesize(g) {
                Ok(s) => m.merge(&s.matrix),
                Err(errs) => panic!(
                    "ill-formed conflict graph `{}`:\n{}",
                    g.class,
                    errs.join("\n")
                ),
            }
        }
        m
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: &[OpDecl<'static>] = &[
        op("observe", &[ObsMode::Size], &[]),
        op("mutate", &[], &[UpdateEffect::SizeChange]),
    ];

    #[test]
    fn synthesis_marks_declared_cells_only() {
        let g = ConflictGraph {
            class: "t",
            ops: OPS,
            edges: &[edge(
                "observe",
                "mutate",
                ObsMode::Size,
                UpdateEffect::SizeChange,
                Overlap::Always,
            )],
        };
        let s = synthesize(&g).unwrap();
        assert!(!s
            .matrix
            .compatible(ObsMode::Size, UpdateEffect::SizeChange, false));
        assert!(!s
            .matrix
            .compatible(ObsMode::Size, UpdateEffect::SizeChange, true));
        assert_eq!(s.matrix.conflicting_cells().len(), 2);
        assert_eq!(s.lock_kinds, vec![LockKind::Size]);
    }

    #[test]
    fn overlap_gated_edge_requires_keyed_mode_and_key_write() {
        let g = ConflictGraph {
            class: "t",
            ops: OPS,
            edges: &[edge(
                "observe",
                "mutate",
                ObsMode::Size,
                UpdateEffect::SizeChange,
                Overlap::OnOverlap,
            )],
        };
        let errs = synthesize(&g).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("whole-collection")));
    }

    #[test]
    fn keyed_always_edge_is_ill_formed() {
        let ops: &[OpDecl<'static>] = &[
            op("reader", &[ObsMode::Key], &[]),
            op("writer", &[], &[UpdateEffect::KeyWrite]),
        ];
        let g = ConflictGraph {
            class: "t",
            ops,
            edges: &[edge(
                "reader",
                "writer",
                ObsMode::Key,
                UpdateEffect::KeyWrite,
                Overlap::Always,
            )],
        };
        let errs = synthesize(&g).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("distinct keys commute")));
    }

    #[test]
    fn asymmetric_compatibility_is_rejected() {
        let ops: &[OpDecl<'static>] = &[
            op("a", &[ObsMode::Key], &[UpdateEffect::KeyWrite]),
            op("b", &[ObsMode::Key], &[UpdateEffect::KeyWrite]),
        ];
        let g = ConflictGraph {
            class: "t",
            ops,
            edges: &[
                edge(
                    "a",
                    "b",
                    ObsMode::Key,
                    UpdateEffect::KeyWrite,
                    Overlap::OnOverlap,
                ),
                // Mirror (b, a) missing; self-edges missing too.
            ],
        };
        let errs = synthesize(&g).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("asymmetric compatibility")));
        assert!(errs.iter().any(|e| e.contains("self-edge")));
    }

    #[test]
    fn missing_op_and_undeclared_mode_are_rejected() {
        let g = ConflictGraph {
            class: "t",
            ops: OPS,
            edges: &[
                edge(
                    "ghost",
                    "mutate",
                    ObsMode::Size,
                    UpdateEffect::SizeChange,
                    Overlap::Always,
                ),
                edge(
                    "observe",
                    "mutate",
                    ObsMode::Empty,
                    UpdateEffect::SizeChange,
                    Overlap::Always,
                ),
            ],
        };
        let errs = validate(&g);
        assert!(errs.iter().any(|e| e.contains("undeclared observer")));
        assert!(errs.iter().any(|e| e.contains("does not declare mode")));
    }

    #[test]
    fn derive_edges_round_trips() {
        let ops: &[OpDecl<'static>] = &[
            op("get", &[ObsMode::Key], &[]),
            op("put", &[ObsMode::Key], &[UpdateEffect::KeyWrite]),
            op("size", &[ObsMode::Size], &[]),
        ];
        let g = ConflictGraph {
            class: "t",
            ops,
            edges: &[
                edge(
                    "get",
                    "put",
                    ObsMode::Key,
                    UpdateEffect::KeyWrite,
                    Overlap::OnOverlap,
                ),
                edge(
                    "put",
                    "put",
                    ObsMode::Key,
                    UpdateEffect::KeyWrite,
                    Overlap::OnOverlap,
                ),
            ],
        };
        let s = synthesize(&g).unwrap();
        let derived = derive_edges(&s.matrix, ops);
        let g2 = ConflictGraph {
            class: "t2",
            ops,
            edges: &derived,
        };
        assert!(validate(&g2).is_empty(), "derived closure must be sound");
        let s2 = synthesize(&g2).unwrap();
        assert_eq!(s.matrix, s2.matrix, "matrix must survive the round trip");
    }
}
