//! Semantic lock tables — the shared transaction state of the collection
//! classes (paper Tables 3, 6, 9).
//!
//! A semantic lock is a record "transaction H has observed abstract property
//! P of this collection". Locks are *read* locks only; writers never block —
//! they detect conflicts at commit time by scanning the lockers of every
//! abstract property they are changing and **dooming** those transactions
//! (program-directed abort). This is the optimistic concurrency control
//! choice of paper §5.1.
//!
//! The tables are guarded by one short [`parking_lot::Mutex`] per collection
//! instance. Lock *acquisition* happens during the transaction body (after
//! which the underlying structure is read open-nested — lock-then-read
//! order is what makes the doom protocol sound); conflict *detection* and
//! lock *release* happen inside commit/abort handlers, which the `stm` crate
//! runs under the **handler lane** (the commit path itself is sharded over
//! per-`TVar` versioned locks; see `stm`'s `clock.rs` and
//! `docs/PROTOCOL.md`).
//!
//! Why the doom protocol stays sound without a global commit mutex:
//!
//! * Every transaction that touches a collection registers handlers, and a
//!   handler-bearing transaction holds the lane from before its memory
//!   validation until after its last handler returns. Among such
//!   transactions the lane *is* the old commit mutex: handler execution —
//!   apply-buffer, doom-scan, lock-release — is totally ordered, and a
//!   committer's doom-vs-commit decision point (the `TxHandle` state CAS)
//!   lies inside its lane hold, so "the doom failed" still implies "the
//!   victim's commit, including its handlers, serialized before mine".
//! * Writing open-nested commits (the queue's eager `poll`, the pessimistic
//!   map's in-place writes) also take the lane, so handlers' direct-mode
//!   reads and writes never interleave with them.
//! * Handler-free memory transactions never touch semantic state; they
//!   interact with collections only through `TVar`s, where per-var commit
//!   locks plus read validation (and the doom CAS, for body-time dooms by
//!   the pessimistic map) already give serializability.
//!
//! Lock order: **handler lane → table mutex → var locks**, in the
//! may-hold-while-acquiring sense; the clock is a wait-free `fetch_add`
//! drawn while var locks are held. A committer's own write-set var locks
//! are acquired after the lane but fully released (publishing releases
//! them) before its handlers take any table mutex, and nobody ever waits
//! for the lane or a table mutex while holding a var lock — so the
//! lane-holder's direct writes, which spin on var locks, always terminate
//! and there is no deadlock. A reader that takes its semantic lock after a
//! committer's doom-scan is guaranteed to observe the fully applied
//! post-commit state: the apply precedes the scan, both run under the same
//! table-mutex hold, and the reader's subsequent open-nested read validates
//! against the already-published versions.

use crate::interval::IntervalTree;
use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stm::{TxHandle, TxState};

/// How a `TransactionalSortedMap` indexes its range locks (paper §3.2: the
/// flat scanned set is the paper's choice; the interval tree is the
/// alternative it mentions — measured in the `ablation_rangeindex` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeIndexKind {
    /// A flat `Vec` scanned linearly at every committed update (paper
    /// default: simple, fast for few outstanding ranges).
    #[default]
    FlatScan,
    /// An augmented treap with `O(log n + hits)` stabbing queries (pays off
    /// with many concurrent iterators).
    IntervalTree,
}

/// The owner of a semantic lock: a top-level transaction attempt.
pub type Owner = Arc<TxHandle>;

// ----------------------------------------------------------------------
// Mode-compatibility oracle (paper Tables 1–8, distilled)
// ----------------------------------------------------------------------

/// Abstract observation modes — what one semantic lock records about a
/// collection (paper Tables 2, 5, 8). Every read-side operation of the
/// collection classes maps to a set of `(ObsMode, target)` locks; e.g.
/// `get(k)` takes `Key` on `k`, a full iteration takes `Key` on every
/// returned key plus `Size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObsMode {
    /// Presence/absence/value of one key observed (`get`, `containsKey`,
    /// `iterator.next`, queue head consumption).
    Key,
    /// Exact element count observed (`size`, exhausted iteration).
    Size,
    /// Emptiness observed as a primitive (§5.1 `isEmpty`, queue
    /// `peek`/`poll` returning nothing).
    Empty,
    /// Identity of the least key observed (`firstKey`).
    First,
    /// Identity of the greatest key observed (`lastKey`).
    Last,
    /// Every key inside an interval observed (sorted iteration, subMap).
    Range,
    /// Fullness of a bounded queue observed (`offer` returning false,
    /// blocking `put` on a full queue).
    Full,
}

impl ObsMode {
    /// All observation modes, for exhaustive matrix checks.
    pub const ALL: [ObsMode; 7] = [
        ObsMode::Key,
        ObsMode::Size,
        ObsMode::Empty,
        ObsMode::First,
        ObsMode::Last,
        ObsMode::Range,
        ObsMode::Full,
    ];
}

/// Abstract effects a committing writer publishes (the write-side axis of
/// paper Tables 1, 4, 7). Every update operation maps to a set of effects;
/// e.g. `put` of a brand-new key is `KeyWrite + SizeChange` (plus
/// `ZeroCross` when the map was empty, plus `FirstChange`/`LastChange` when
/// it moves an endpoint of a sorted map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateEffect {
    /// A key was added, removed, or its value replaced.
    KeyWrite,
    /// The element count changed.
    SizeChange,
    /// The count crossed zero in either direction (§5.1 `isEmpty` lock;
    /// queue emptiness invalidated by a producing commit).
    ZeroCross,
    /// The least key changed.
    FirstChange,
    /// The greatest key changed.
    LastChange,
    /// Elements were permanently consumed (frees capacity in a bounded
    /// queue, invalidating fullness observations).
    Consume,
}

impl UpdateEffect {
    /// All update effects, for exhaustive matrix checks.
    pub const ALL: [UpdateEffect; 6] = [
        UpdateEffect::KeyWrite,
        UpdateEffect::SizeChange,
        UpdateEffect::ZeroCross,
        UpdateEffect::FirstChange,
        UpdateEffect::LastChange,
        UpdateEffect::Consume,
    ];
}

/// The mode-compatibility function: `true` iff a semantic lock in mode
/// `obs` survives a committing update that publishes `effect` — i.e. the
/// two operations commute and the observer is *not* doomed.
///
/// `overlap` is whether the update's key equals the observed key
/// (`ObsMode::Key`) or falls inside the observed interval
/// (`ObsMode::Range`); it is ignored for the whole-collection modes.
///
/// This single function is the repo's machine-checkable distillation of
/// paper Tables 1–8. It is validated two ways: statically by `txlint`'s
/// conflict-matrix oracle (`cargo run -p txlint -- --oracle`), which
/// replays every table row against it, and dynamically by the exhaustive
/// pairwise suite in `crates/core/tests/oracle_matrix.rs`, which drives
/// real two-transaction executions and asserts the doom protocol agrees.
pub fn mode_compatible(obs: ObsMode, effect: UpdateEffect, overlap: bool) -> bool {
    match (obs, effect) {
        // A key observation conflicts exactly with a write of that key.
        (ObsMode::Key, UpdateEffect::KeyWrite) => !overlap,
        // A range observation conflicts with writes landing inside it.
        (ObsMode::Range, UpdateEffect::KeyWrite) => !overlap,
        // Size observers are doomed by any size change — but NOT by a
        // value-replacing put (which publishes KeyWrite without
        // SizeChange): that asymmetry is the point of semantic locks.
        (ObsMode::Size, UpdateEffect::SizeChange) => false,
        // Emptiness-as-primitive observers survive size changes that do
        // not cross zero (§5.1).
        (ObsMode::Empty, UpdateEffect::ZeroCross) => false,
        // Endpoint observers are doomed only when their endpoint moves.
        (ObsMode::First, UpdateEffect::FirstChange) => false,
        (ObsMode::Last, UpdateEffect::LastChange) => false,
        // Fullness observers are doomed when capacity is freed.
        (ObsMode::Full, UpdateEffect::Consume) => false,
        // Everything else commutes.
        _ => true,
    }
}

/// Counters of semantic conflict detections, per collection instance.
///
/// Every increment corresponds to at least one transaction doomed because a
/// committing writer changed an abstract property the victim had observed.
#[derive(Debug, Default)]
pub struct SemanticStats {
    /// Dooms due to key locks (get/containsKey/iterator.next vs put/remove).
    pub key_conflicts: AtomicU64,
    /// Dooms due to the size lock (size/hasNext-false vs size change).
    pub size_conflicts: AtomicU64,
    /// Dooms due to range locks (sorted iteration vs put/remove in range).
    pub range_conflicts: AtomicU64,
    /// Dooms due to the first-key lock (endpoint change).
    pub first_conflicts: AtomicU64,
    /// Dooms due to the last-key lock (endpoint change).
    pub last_conflicts: AtomicU64,
    /// Dooms due to the empty lock (peek/poll-null vs put, and the
    /// `isEmpty`-as-primitive zero-crossing lock of §5.1).
    pub empty_conflicts: AtomicU64,
}

impl SemanticStats {
    /// Sum of all semantic conflicts.
    pub fn total(&self) -> u64 {
        self.key_conflicts.load(Ordering::Relaxed)
            + self.size_conflicts.load(Ordering::Relaxed)
            + self.range_conflicts.load(Ordering::Relaxed)
            + self.first_conflicts.load(Ordering::Relaxed)
            + self.last_conflicts.load(Ordering::Relaxed)
            + self.empty_conflicts.load(Ordering::Relaxed)
    }

    pub(crate) fn bump(&self, which: &AtomicU64, n: u64) {
        if n > 0 {
            which.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Doom every *other*, still-active owner in `owners`; prune finished ones.
/// Returns how many dooms landed.
// `Owner` hashes by `TxHandle` id, which never changes after creation; the
// handle's atomics do not participate in Hash/Eq.
#[allow(clippy::mutable_key_type)]
pub(crate) fn doom_others(owners: &mut HashSet<Owner>, self_id: u64) -> u64 {
    let mut doomed = 0;
    owners.retain(|o| {
        if o.id() == self_id {
            return true;
        }
        match o.state() {
            TxState::Active => {
                if o.doom() {
                    doomed += 1;
                }
                true
            }
            // Finished transactions should have released their locks; if one
            // lingers (e.g. a panicking thread), prune it here.
            _ => false,
        }
    });
    doomed
}

/// Lock tables for the `Map` abstraction (paper Table 3: `key2lockers`,
/// `sizeLockers`; plus the §5.1 `isEmpty` zero-crossing lock set).
#[derive(Debug)]
pub(crate) struct MapLockTables<K> {
    pub key2lockers: HashMap<K, HashSet<Owner>>,
    pub size_lockers: HashSet<Owner>,
    pub empty_lockers: HashSet<Owner>,
}

impl<K> Default for MapLockTables<K> {
    fn default() -> Self {
        MapLockTables {
            key2lockers: HashMap::new(),
            size_lockers: HashSet::new(),
            empty_lockers: HashSet::new(),
        }
    }
}

impl<K: Clone + Eq + std::hash::Hash> MapLockTables<K> {
    pub(crate) fn take_key_lock(&mut self, key: K, owner: Owner) {
        self.key2lockers.entry(key).or_default().insert(owner);
    }

    pub(crate) fn take_size_lock(&mut self, owner: Owner) {
        self.size_lockers.insert(owner);
    }

    pub(crate) fn take_empty_lock(&mut self, owner: Owner) {
        self.empty_lockers.insert(owner);
    }

    /// A committing writer is adding/removing/replacing `key`: doom readers.
    pub(crate) fn doom_key_lockers(&mut self, key: &K, self_id: u64) -> u64 {
        match self.key2lockers.get_mut(key) {
            None => 0,
            Some(owners) => {
                let n = doom_others(owners, self_id);
                if owners.is_empty() {
                    self.key2lockers.remove(key);
                }
                n
            }
        }
    }

    /// A committing writer changed the size: doom size observers.
    pub(crate) fn doom_size_lockers(&mut self, self_id: u64) -> u64 {
        doom_others(&mut self.size_lockers, self_id)
    }

    /// A committing writer made the size cross zero: doom emptiness
    /// observers (the `isEmpty`-as-primitive lock).
    pub(crate) fn doom_empty_lockers(&mut self, self_id: u64) -> u64 {
        doom_others(&mut self.empty_lockers, self_id)
    }

    /// Release every lock held on behalf of `owner_id`. `keys` is the
    /// owner's thread-local `keyLocks` set — kept precisely so release does
    /// not have to enumerate `key2lockers` (paper §3.1).
    pub(crate) fn release_owner<'a>(&mut self, owner_id: u64, keys: impl Iterator<Item = &'a K>)
    where
        K: 'a,
    {
        for k in keys {
            if let Some(owners) = self.key2lockers.get_mut(k) {
                owners.retain(|o| o.id() != owner_id);
                if owners.is_empty() {
                    self.key2lockers.remove(k);
                }
            }
        }
        self.size_lockers.retain(|o| o.id() != owner_id);
        self.empty_lockers.retain(|o| o.id() != owner_id);
    }

    /// Number of distinct keys currently locked (diagnostics).
    pub(crate) fn locked_key_count(&self) -> usize {
        self.key2lockers.len()
    }

    /// Doom every observer whose mode is incompatible with `effect`
    /// according to [`mode_compatible`] — the single dispatch point of the
    /// map-side doom protocol. `key` is the update's key, when it has one.
    ///
    /// Returns `(key_doomed, size_doomed, empty_doomed)` so callers can
    /// attribute the dooms to per-mode [`SemanticStats`] counters.
    pub(crate) fn doom_update(
        &mut self,
        effect: UpdateEffect,
        key: Option<&K>,
        self_id: u64,
    ) -> (u64, u64, u64) {
        let mut by_key = 0;
        if let Some(k) = key {
            if !mode_compatible(ObsMode::Key, effect, true) {
                by_key = self.doom_key_lockers(k, self_id);
            }
        }
        let by_size = if !mode_compatible(ObsMode::Size, effect, false) {
            self.doom_size_lockers(self_id)
        } else {
            0
        };
        let by_empty = if !mode_compatible(ObsMode::Empty, effect, false) {
            self.doom_empty_lockers(self_id)
        } else {
            0
        };
        (by_key, by_size, by_empty)
    }
}

/// A range lock: owner has observed all keys in the interval. Identified by
/// a stable id so iterators can grow their range as they advance even while
/// the table compacts.
#[derive(Debug, Clone)]
pub(crate) struct RangeLock<K> {
    pub id: u64,
    pub owner: Owner,
    pub lower: Bound<K>,
    pub upper: Bound<K>,
}

fn in_range<K: Ord>(key: &K, lower: &Bound<K>, upper: &Bound<K>) -> bool {
    let lo_ok = match lower {
        Bound::Unbounded => true,
        Bound::Included(l) => key >= l,
        Bound::Excluded(l) => key > l,
    };
    let hi_ok = match upper {
        Bound::Unbounded => true,
        Bound::Included(u) => key <= u,
        Bound::Excluded(u) => key < u,
    };
    lo_ok && hi_ok
}

/// The range-lock store: flat scanned list (paper default) or interval
/// tree (the §3.2 alternative).
pub(crate) enum RangeStore<K> {
    Flat {
        locks: Vec<RangeLock<K>>,
        next_id: u64,
    },
    Tree {
        tree: IntervalTree<K, Owner>,
        /// Owner id -> that owner's (lower, id) pairs, for O(own) release.
        by_owner: HashMap<u64, Vec<(Bound<K>, u64)>>,
        /// Lock id -> lower bound (the tree's lookup key), for extension.
        by_id: HashMap<u64, Bound<K>>,
    },
}

impl<K: Clone + Ord> RangeStore<K> {
    fn new(kind: RangeIndexKind) -> Self {
        match kind {
            RangeIndexKind::FlatScan => RangeStore::Flat {
                locks: Vec::new(),
                next_id: 0,
            },
            RangeIndexKind::IntervalTree => RangeStore::Tree {
                tree: IntervalTree::new(),
                by_owner: HashMap::new(),
                by_id: HashMap::new(),
            },
        }
    }
}

/// Additional lock tables for the `SortedMap` abstraction (paper Table 6:
/// `firstLockers`, `lastLockers`, `rangeLockers`).
pub(crate) struct SortedLockTables<K> {
    pub first_lockers: HashSet<Owner>,
    pub last_lockers: HashSet<Owner>,
    pub ranges: RangeStore<K>,
}

impl<K: Clone + Ord> Default for SortedLockTables<K> {
    fn default() -> Self {
        Self::with_kind(RangeIndexKind::FlatScan)
    }
}

impl<K: Clone + Ord> SortedLockTables<K> {
    pub(crate) fn with_kind(kind: RangeIndexKind) -> Self {
        SortedLockTables {
            first_lockers: HashSet::new(),
            last_lockers: HashSet::new(),
            ranges: RangeStore::new(kind),
        }
    }

    pub(crate) fn take_first_lock(&mut self, owner: Owner) {
        self.first_lockers.insert(owner);
    }

    pub(crate) fn take_last_lock(&mut self, owner: Owner) {
        self.last_lockers.insert(owner);
    }

    /// Register a range lock and return its stable id so an iterator can
    /// grow it as it advances.
    pub(crate) fn add_range_lock(&mut self, owner: Owner, lower: Bound<K>, upper: Bound<K>) -> u64 {
        match &mut self.ranges {
            RangeStore::Flat { locks, next_id } => {
                let id = *next_id;
                *next_id += 1;
                locks.push(RangeLock {
                    id,
                    owner,
                    lower,
                    upper,
                });
                id
            }
            RangeStore::Tree {
                tree,
                by_owner,
                by_id,
            } => {
                let owner_id = owner.id();
                let id = tree.insert(lower.clone(), upper, owner);
                by_owner
                    .entry(owner_id)
                    .or_default()
                    .push((lower.clone(), id));
                by_id.insert(id, lower);
                id
            }
        }
    }

    /// Extend the upper bound of a previously registered range lock.
    pub(crate) fn extend_range_upper(&mut self, id: u64, upper: Bound<K>) {
        match &mut self.ranges {
            RangeStore::Flat { locks, .. } => {
                if let Some(r) = locks.iter_mut().find(|r| r.id == id) {
                    r.upper = upper;
                }
            }
            RangeStore::Tree { tree, by_id, .. } => {
                if let Some(lower) = by_id.get(&id) {
                    tree.extend_upper(&lower.clone(), id, upper);
                }
            }
        }
    }

    /// A committing writer touched `key`: doom owners of covering ranges.
    pub(crate) fn doom_range_lockers(&mut self, key: &K, self_id: u64) -> u64 {
        let mut doomed = 0;
        match &mut self.ranges {
            RangeStore::Flat { locks, .. } => {
                locks.retain(|r| {
                    if r.owner.id() == self_id {
                        return true;
                    }
                    match r.owner.state() {
                        TxState::Active => {
                            if in_range(key, &r.lower, &r.upper) && r.owner.doom() {
                                doomed += 1;
                            }
                            true
                        }
                        _ => false,
                    }
                });
            }
            RangeStore::Tree { tree, .. } => {
                tree.stab(key, &mut |_, owner| {
                    if owner.id() != self_id && owner.state() == TxState::Active && owner.doom() {
                        doomed += 1;
                    }
                });
            }
        }
        doomed
    }

    pub(crate) fn doom_first_lockers(&mut self, self_id: u64) -> u64 {
        doom_others(&mut self.first_lockers, self_id)
    }

    pub(crate) fn doom_last_lockers(&mut self, self_id: u64) -> u64 {
        doom_others(&mut self.last_lockers, self_id)
    }

    /// Sorted-side counterpart of [`MapLockTables::doom_update`]: dooms
    /// range/first/last observers incompatible with `effect` per
    /// [`mode_compatible`]. Returns `(range_doomed, first_doomed,
    /// last_doomed)`.
    pub(crate) fn doom_update(
        &mut self,
        effect: UpdateEffect,
        key: Option<&K>,
        self_id: u64,
    ) -> (u64, u64, u64) {
        let mut by_range = 0;
        if let Some(k) = key {
            // Overlap for Range mode is evaluated per lock inside
            // doom_range_lockers; mode_compatible gates whether the effect
            // class can invalidate ranges at all.
            if !mode_compatible(ObsMode::Range, effect, true) {
                by_range = self.doom_range_lockers(k, self_id);
            }
        }
        let by_first = if !mode_compatible(ObsMode::First, effect, false) {
            self.doom_first_lockers(self_id)
        } else {
            0
        };
        let by_last = if !mode_compatible(ObsMode::Last, effect, false) {
            self.doom_last_lockers(self_id)
        } else {
            0
        };
        (by_range, by_first, by_last)
    }

    pub(crate) fn release_owner(&mut self, owner_id: u64) {
        self.first_lockers.retain(|o| o.id() != owner_id);
        self.last_lockers.retain(|o| o.id() != owner_id);
        match &mut self.ranges {
            RangeStore::Flat { locks, .. } => {
                locks.retain(|r| r.owner.id() != owner_id);
            }
            RangeStore::Tree {
                tree,
                by_owner,
                by_id,
            } => {
                if let Some(mine) = by_owner.remove(&owner_id) {
                    for (lower, id) in mine {
                        tree.remove(&lower, id);
                        by_id.remove(&id);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner() -> Owner {
        TxHandle::new(0)
    }

    #[test]
    fn key_lock_doom_hits_only_other_active_owners() {
        let mut t: MapLockTables<u32> = MapLockTables::default();
        let me = owner();
        let victim = owner();
        t.take_key_lock(7, me.clone());
        t.take_key_lock(7, victim.clone());
        let doomed = t.doom_key_lockers(&7, me.id());
        assert_eq!(doomed, 1);
        assert!(victim.is_doomed());
        assert!(!me.is_doomed());
    }

    #[test]
    fn doom_missing_key_is_zero() {
        let mut t: MapLockTables<u32> = MapLockTables::default();
        assert_eq!(t.doom_key_lockers(&1, 0), 0);
    }

    #[test]
    fn release_removes_all_owner_locks() {
        let mut t: MapLockTables<u32> = MapLockTables::default();
        let me = owner();
        t.take_key_lock(1, me.clone());
        t.take_key_lock(2, me.clone());
        t.take_size_lock(me.clone());
        let keys: Vec<u32> = vec![1, 2];
        t.release_owner(me.id(), keys.iter());
        assert_eq!(t.locked_key_count(), 0);
        assert_eq!(t.doom_size_lockers(u64::MAX), 0);
    }

    #[test]
    #[allow(clippy::mutable_key_type)]
    fn finished_owners_are_pruned_not_doomed() {
        let mut t: MapLockTables<u32> = MapLockTables::default();
        let dead = owner();
        // Simulate a completed transaction lingering in the table.
        let mut set = HashSet::new();
        set.insert(dead.clone());
        t.size_lockers = set;
        // mark_committed is crate-private to stm; emulate via doom->abort path
        // is not possible here, so use an Active owner and verify doom, then
        // check pruning with the doomed-but-aborted state is covered by the
        // integration tests.
        let n = t.doom_size_lockers(u64::MAX);
        assert_eq!(n, 1);
    }

    #[test]
    fn range_lock_covers_and_grows() {
        let mut t: SortedLockTables<u32> = SortedLockTables::default();
        let me = owner();
        let victim = owner();
        let idx = t.add_range_lock(victim.clone(), Bound::Included(10), Bound::Included(20));
        assert_eq!(t.doom_range_lockers(&5, me.id()), 0);
        assert_eq!(t.doom_range_lockers(&15, me.id()), 1);
        assert!(victim.is_doomed());

        let victim2 = owner();
        let id2 = t.add_range_lock(victim2.clone(), Bound::Included(30), Bound::Excluded(31));
        t.extend_range_upper(id2, Bound::Included(40));
        assert_eq!(t.doom_range_lockers(&40, me.id()), 1);
        assert!(victim2.is_doomed());
        let _ = idx;
    }

    #[test]
    fn range_owner_not_self_doomed() {
        let mut t: SortedLockTables<u32> = SortedLockTables::default();
        let me = owner();
        t.add_range_lock(me.clone(), Bound::Unbounded, Bound::Unbounded);
        assert_eq!(t.doom_range_lockers(&1, me.id()), 0);
        assert!(!me.is_doomed());
    }

    #[test]
    fn mode_compatibility_matrix_spot_checks() {
        use {ObsMode as O, UpdateEffect as E};
        // Table 1/2: get(k) vs put(k) conflicts; vs put(k') commutes.
        assert!(!mode_compatible(O::Key, E::KeyWrite, true));
        assert!(mode_compatible(O::Key, E::KeyWrite, false));
        // Table 1: size vs value-replacing put (KeyWrite, no SizeChange).
        assert!(mode_compatible(O::Size, E::KeyWrite, true));
        assert!(!mode_compatible(O::Size, E::SizeChange, false));
        // §5.1: isEmpty-as-primitive survives non-crossing size changes.
        assert!(mode_compatible(O::Empty, E::SizeChange, false));
        assert!(!mode_compatible(O::Empty, E::ZeroCross, false));
        // Tables 4/5: range iteration vs in/out-of-range writes.
        assert!(!mode_compatible(O::Range, E::KeyWrite, true));
        assert!(mode_compatible(O::Range, E::KeyWrite, false));
        // Tables 7/8: queue fullness freed only by consumption.
        assert!(!mode_compatible(O::Full, E::Consume, false));
        assert!(mode_compatible(O::Full, E::KeyWrite, false));
    }

    #[test]
    fn doom_update_routes_through_mode_compatibility() {
        let mut t: MapLockTables<u32> = MapLockTables::default();
        let me = owner();
        let key_watcher = owner();
        let size_watcher = owner();
        let empty_watcher = owner();
        t.take_key_lock(7, key_watcher.clone());
        t.take_size_lock(size_watcher.clone());
        t.take_empty_lock(empty_watcher.clone());

        // A value-replacing put: dooms the key watcher only.
        let (k, s, e) = t.doom_update(UpdateEffect::KeyWrite, Some(&7), me.id());
        assert_eq!((k, s, e), (1, 0, 0));
        assert!(key_watcher.is_doomed());
        assert!(!size_watcher.is_doomed() && !empty_watcher.is_doomed());

        // A size change without zero crossing: dooms the size watcher only.
        let (k, s, e) = t.doom_update(UpdateEffect::SizeChange, None, me.id());
        assert_eq!((k, s, e), (0, 1, 0));
        assert!(!empty_watcher.is_doomed());

        // Zero crossing: dooms the emptiness watcher.
        let (_, _, e) = t.doom_update(UpdateEffect::ZeroCross, None, me.id());
        assert_eq!(e, 1);
        assert!(empty_watcher.is_doomed());
    }

    #[test]
    fn sorted_doom_update_endpoints_and_ranges() {
        let mut t: SortedLockTables<u32> = SortedLockTables::default();
        let me = owner();
        let ranger = owner();
        let firster = owner();
        t.add_range_lock(ranger.clone(), Bound::Included(10), Bound::Included(20));
        t.take_first_lock(firster.clone());

        let (r, f, l) = t.doom_update(UpdateEffect::KeyWrite, Some(&15), me.id());
        assert_eq!((r, f, l), (1, 0, 0));
        assert!(ranger.is_doomed() && !firster.is_doomed());

        let (r, f, _) = t.doom_update(UpdateEffect::FirstChange, None, me.id());
        assert_eq!((r, f), (0, 1));
        assert!(firster.is_doomed());
    }

    #[test]
    fn in_range_bounds() {
        assert!(in_range(&5, &Bound::Included(5), &Bound::Included(5)));
        assert!(!in_range(&5, &Bound::Excluded(5), &Bound::Unbounded));
        assert!(!in_range(&5, &Bound::Unbounded, &Bound::Excluded(5)));
        assert!(in_range(&5, &Bound::Unbounded, &Bound::Unbounded));
    }
}
