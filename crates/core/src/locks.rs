//! Semantic lock tables — the shared transaction state of the collection
//! classes (paper Tables 3, 6, 9).
//!
//! A semantic lock is a record "transaction H has observed abstract property
//! P of this collection". Locks are *read* locks only; writers never block —
//! they detect conflicts at commit time by scanning the lockers of every
//! abstract property they are changing and **dooming** those transactions
//! (program-directed abort). This is the optimistic concurrency control
//! choice of paper §5.1.
//!
//! The tables are guarded by one short [`parking_lot::Mutex`] per collection
//! instance. Lock *acquisition* happens during the transaction body (after
//! which the underlying structure is read open-nested — lock-then-read
//! order is what makes the doom protocol sound); conflict *detection* and
//! lock *release* happen inside commit/abort handlers, which the `stm` crate
//! runs under the global commit mutex. The mutex order is always
//! commit-mutex → table-mutex, so there is no deadlock, and a reader that
//! takes its lock after a committer's scan is guaranteed to observe the
//! fully applied post-commit state (its open-nested read must validate
//! under the commit mutex, which the committer holds until its handlers
//! finish).

use crate::interval::IntervalTree;
use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stm::{TxHandle, TxState};

/// How a `TransactionalSortedMap` indexes its range locks (paper §3.2: the
/// flat scanned set is the paper's choice; the interval tree is the
/// alternative it mentions — measured in the `ablation_rangeindex` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeIndexKind {
    /// A flat `Vec` scanned linearly at every committed update (paper
    /// default: simple, fast for few outstanding ranges).
    #[default]
    FlatScan,
    /// An augmented treap with `O(log n + hits)` stabbing queries (pays off
    /// with many concurrent iterators).
    IntervalTree,
}

/// The owner of a semantic lock: a top-level transaction attempt.
pub type Owner = Arc<TxHandle>;

/// Counters of semantic conflict detections, per collection instance.
///
/// Every increment corresponds to at least one transaction doomed because a
/// committing writer changed an abstract property the victim had observed.
#[derive(Debug, Default)]
pub struct SemanticStats {
    /// Dooms due to key locks (get/containsKey/iterator.next vs put/remove).
    pub key_conflicts: AtomicU64,
    /// Dooms due to the size lock (size/hasNext-false vs size change).
    pub size_conflicts: AtomicU64,
    /// Dooms due to range locks (sorted iteration vs put/remove in range).
    pub range_conflicts: AtomicU64,
    /// Dooms due to the first-key lock (endpoint change).
    pub first_conflicts: AtomicU64,
    /// Dooms due to the last-key lock (endpoint change).
    pub last_conflicts: AtomicU64,
    /// Dooms due to the empty lock (peek/poll-null vs put, and the
    /// `isEmpty`-as-primitive zero-crossing lock of §5.1).
    pub empty_conflicts: AtomicU64,
}

impl SemanticStats {
    /// Sum of all semantic conflicts.
    pub fn total(&self) -> u64 {
        self.key_conflicts.load(Ordering::Relaxed)
            + self.size_conflicts.load(Ordering::Relaxed)
            + self.range_conflicts.load(Ordering::Relaxed)
            + self.first_conflicts.load(Ordering::Relaxed)
            + self.last_conflicts.load(Ordering::Relaxed)
            + self.empty_conflicts.load(Ordering::Relaxed)
    }

    pub(crate) fn bump(&self, which: &AtomicU64, n: u64) {
        if n > 0 {
            which.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Doom every *other*, still-active owner in `owners`; prune finished ones.
/// Returns how many dooms landed.
pub(crate) fn doom_others(owners: &mut HashSet<Owner>, self_id: u64) -> u64 {
    let mut doomed = 0;
    owners.retain(|o| {
        if o.id() == self_id {
            return true;
        }
        match o.state() {
            TxState::Active => {
                if o.doom() {
                    doomed += 1;
                }
                true
            }
            // Finished transactions should have released their locks; if one
            // lingers (e.g. a panicking thread), prune it here.
            _ => false,
        }
    });
    doomed
}

/// Lock tables for the `Map` abstraction (paper Table 3: `key2lockers`,
/// `sizeLockers`; plus the §5.1 `isEmpty` zero-crossing lock set).
#[derive(Debug)]
pub(crate) struct MapLockTables<K> {
    pub key2lockers: HashMap<K, HashSet<Owner>>,
    pub size_lockers: HashSet<Owner>,
    pub empty_lockers: HashSet<Owner>,
}

impl<K> Default for MapLockTables<K> {
    fn default() -> Self {
        MapLockTables {
            key2lockers: HashMap::new(),
            size_lockers: HashSet::new(),
            empty_lockers: HashSet::new(),
        }
    }
}

impl<K: Clone + Eq + std::hash::Hash> MapLockTables<K> {
    pub fn take_key_lock(&mut self, key: K, owner: Owner) {
        self.key2lockers.entry(key).or_default().insert(owner);
    }

    pub fn take_size_lock(&mut self, owner: Owner) {
        self.size_lockers.insert(owner);
    }

    pub fn take_empty_lock(&mut self, owner: Owner) {
        self.empty_lockers.insert(owner);
    }

    /// A committing writer is adding/removing/replacing `key`: doom readers.
    pub fn doom_key_lockers(&mut self, key: &K, self_id: u64) -> u64 {
        match self.key2lockers.get_mut(key) {
            None => 0,
            Some(owners) => {
                let n = doom_others(owners, self_id);
                if owners.is_empty() {
                    self.key2lockers.remove(key);
                }
                n
            }
        }
    }

    /// A committing writer changed the size: doom size observers.
    pub fn doom_size_lockers(&mut self, self_id: u64) -> u64 {
        doom_others(&mut self.size_lockers, self_id)
    }

    /// A committing writer made the size cross zero: doom emptiness
    /// observers (the `isEmpty`-as-primitive lock).
    pub fn doom_empty_lockers(&mut self, self_id: u64) -> u64 {
        doom_others(&mut self.empty_lockers, self_id)
    }

    /// Release every lock held on behalf of `owner_id`. `keys` is the
    /// owner's thread-local `keyLocks` set — kept precisely so release does
    /// not have to enumerate `key2lockers` (paper §3.1).
    pub fn release_owner<'a>(&mut self, owner_id: u64, keys: impl Iterator<Item = &'a K>)
    where
        K: 'a,
    {
        for k in keys {
            if let Some(owners) = self.key2lockers.get_mut(k) {
                owners.retain(|o| o.id() != owner_id);
                if owners.is_empty() {
                    self.key2lockers.remove(k);
                }
            }
        }
        self.size_lockers.retain(|o| o.id() != owner_id);
        self.empty_lockers.retain(|o| o.id() != owner_id);
    }

    /// Number of distinct keys currently locked (diagnostics).
    pub fn locked_key_count(&self) -> usize {
        self.key2lockers.len()
    }
}

/// A range lock: owner has observed all keys in the interval. Identified by
/// a stable id so iterators can grow their range as they advance even while
/// the table compacts.
#[derive(Debug, Clone)]
pub(crate) struct RangeLock<K> {
    pub id: u64,
    pub owner: Owner,
    pub lower: Bound<K>,
    pub upper: Bound<K>,
}

fn in_range<K: Ord>(key: &K, lower: &Bound<K>, upper: &Bound<K>) -> bool {
    let lo_ok = match lower {
        Bound::Unbounded => true,
        Bound::Included(l) => key >= l,
        Bound::Excluded(l) => key > l,
    };
    let hi_ok = match upper {
        Bound::Unbounded => true,
        Bound::Included(u) => key <= u,
        Bound::Excluded(u) => key < u,
    };
    lo_ok && hi_ok
}

/// The range-lock store: flat scanned list (paper default) or interval
/// tree (the §3.2 alternative).
pub(crate) enum RangeStore<K> {
    Flat {
        locks: Vec<RangeLock<K>>,
        next_id: u64,
    },
    Tree {
        tree: IntervalTree<K, Owner>,
        /// Owner id -> that owner's (lower, id) pairs, for O(own) release.
        by_owner: HashMap<u64, Vec<(Bound<K>, u64)>>,
        /// Lock id -> lower bound (the tree's lookup key), for extension.
        by_id: HashMap<u64, Bound<K>>,
    },
}

impl<K: Clone + Ord> RangeStore<K> {
    fn new(kind: RangeIndexKind) -> Self {
        match kind {
            RangeIndexKind::FlatScan => RangeStore::Flat {
                locks: Vec::new(),
                next_id: 0,
            },
            RangeIndexKind::IntervalTree => RangeStore::Tree {
                tree: IntervalTree::new(),
                by_owner: HashMap::new(),
                by_id: HashMap::new(),
            },
        }
    }
}

/// Additional lock tables for the `SortedMap` abstraction (paper Table 6:
/// `firstLockers`, `lastLockers`, `rangeLockers`).
pub(crate) struct SortedLockTables<K> {
    pub first_lockers: HashSet<Owner>,
    pub last_lockers: HashSet<Owner>,
    pub ranges: RangeStore<K>,
}

impl<K: Clone + Ord> Default for SortedLockTables<K> {
    fn default() -> Self {
        Self::with_kind(RangeIndexKind::FlatScan)
    }
}

impl<K: Clone + Ord> SortedLockTables<K> {
    pub fn with_kind(kind: RangeIndexKind) -> Self {
        SortedLockTables {
            first_lockers: HashSet::new(),
            last_lockers: HashSet::new(),
            ranges: RangeStore::new(kind),
        }
    }

    pub fn take_first_lock(&mut self, owner: Owner) {
        self.first_lockers.insert(owner);
    }

    pub fn take_last_lock(&mut self, owner: Owner) {
        self.last_lockers.insert(owner);
    }

    /// Register a range lock and return its stable id so an iterator can
    /// grow it as it advances.
    pub fn add_range_lock(&mut self, owner: Owner, lower: Bound<K>, upper: Bound<K>) -> u64 {
        match &mut self.ranges {
            RangeStore::Flat { locks, next_id } => {
                let id = *next_id;
                *next_id += 1;
                locks.push(RangeLock {
                    id,
                    owner,
                    lower,
                    upper,
                });
                id
            }
            RangeStore::Tree {
                tree,
                by_owner,
                by_id,
            } => {
                let owner_id = owner.id();
                let id = tree.insert(lower.clone(), upper, owner);
                by_owner
                    .entry(owner_id)
                    .or_default()
                    .push((lower.clone(), id));
                by_id.insert(id, lower);
                id
            }
        }
    }

    /// Extend the upper bound of a previously registered range lock.
    pub fn extend_range_upper(&mut self, id: u64, upper: Bound<K>) {
        match &mut self.ranges {
            RangeStore::Flat { locks, .. } => {
                if let Some(r) = locks.iter_mut().find(|r| r.id == id) {
                    r.upper = upper;
                }
            }
            RangeStore::Tree { tree, by_id, .. } => {
                if let Some(lower) = by_id.get(&id) {
                    tree.extend_upper(&lower.clone(), id, upper);
                }
            }
        }
    }

    /// A committing writer touched `key`: doom owners of covering ranges.
    pub fn doom_range_lockers(&mut self, key: &K, self_id: u64) -> u64 {
        let mut doomed = 0;
        match &mut self.ranges {
            RangeStore::Flat { locks, .. } => {
                locks.retain(|r| {
                    if r.owner.id() == self_id {
                        return true;
                    }
                    match r.owner.state() {
                        TxState::Active => {
                            if in_range(key, &r.lower, &r.upper) && r.owner.doom() {
                                doomed += 1;
                            }
                            true
                        }
                        _ => false,
                    }
                });
            }
            RangeStore::Tree { tree, .. } => {
                tree.stab(key, &mut |_, owner| {
                    if owner.id() != self_id
                        && owner.state() == TxState::Active
                        && owner.doom()
                    {
                        doomed += 1;
                    }
                });
            }
        }
        doomed
    }

    pub fn doom_first_lockers(&mut self, self_id: u64) -> u64 {
        doom_others(&mut self.first_lockers, self_id)
    }

    pub fn doom_last_lockers(&mut self, self_id: u64) -> u64 {
        doom_others(&mut self.last_lockers, self_id)
    }

    pub fn release_owner(&mut self, owner_id: u64) {
        self.first_lockers.retain(|o| o.id() != owner_id);
        self.last_lockers.retain(|o| o.id() != owner_id);
        match &mut self.ranges {
            RangeStore::Flat { locks, .. } => {
                locks.retain(|r| r.owner.id() != owner_id);
            }
            RangeStore::Tree {
                tree,
                by_owner,
                by_id,
            } => {
                if let Some(mine) = by_owner.remove(&owner_id) {
                    for (lower, id) in mine {
                        tree.remove(&lower, id);
                        by_id.remove(&id);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner() -> Owner {
        TxHandle::new(0)
    }

    #[test]
    fn key_lock_doom_hits_only_other_active_owners() {
        let mut t: MapLockTables<u32> = MapLockTables::default();
        let me = owner();
        let victim = owner();
        t.take_key_lock(7, me.clone());
        t.take_key_lock(7, victim.clone());
        let doomed = t.doom_key_lockers(&7, me.id());
        assert_eq!(doomed, 1);
        assert!(victim.is_doomed());
        assert!(!me.is_doomed());
    }

    #[test]
    fn doom_missing_key_is_zero() {
        let mut t: MapLockTables<u32> = MapLockTables::default();
        assert_eq!(t.doom_key_lockers(&1, 0), 0);
    }

    #[test]
    fn release_removes_all_owner_locks() {
        let mut t: MapLockTables<u32> = MapLockTables::default();
        let me = owner();
        t.take_key_lock(1, me.clone());
        t.take_key_lock(2, me.clone());
        t.take_size_lock(me.clone());
        let keys: Vec<u32> = vec![1, 2];
        t.release_owner(me.id(), keys.iter());
        assert_eq!(t.locked_key_count(), 0);
        assert_eq!(t.doom_size_lockers(u64::MAX), 0);
    }

    #[test]
    fn finished_owners_are_pruned_not_doomed() {
        let mut t: MapLockTables<u32> = MapLockTables::default();
        let dead = owner();
        // Simulate a completed transaction lingering in the table.
        let mut set = HashSet::new();
        set.insert(dead.clone());
        t.size_lockers = set;
        // mark_committed is crate-private to stm; emulate via doom->abort path
        // is not possible here, so use an Active owner and verify doom, then
        // check pruning with the doomed-but-aborted state is covered by the
        // integration tests.
        let n = t.doom_size_lockers(u64::MAX);
        assert_eq!(n, 1);
    }

    #[test]
    fn range_lock_covers_and_grows() {
        let mut t: SortedLockTables<u32> = SortedLockTables::default();
        let me = owner();
        let victim = owner();
        let idx = t.add_range_lock(victim.clone(), Bound::Included(10), Bound::Included(20));
        assert_eq!(t.doom_range_lockers(&5, me.id()), 0);
        assert_eq!(t.doom_range_lockers(&15, me.id()), 1);
        assert!(victim.is_doomed());

        let victim2 = owner();
        let id2 = t.add_range_lock(victim2.clone(), Bound::Included(30), Bound::Excluded(31));
        t.extend_range_upper(id2, Bound::Included(40));
        assert_eq!(t.doom_range_lockers(&40, me.id()), 1);
        assert!(victim2.is_doomed());
        let _ = idx;
    }

    #[test]
    fn range_owner_not_self_doomed() {
        let mut t: SortedLockTables<u32> = SortedLockTables::default();
        let me = owner();
        t.add_range_lock(me.clone(), Bound::Unbounded, Bound::Unbounded);
        assert_eq!(t.doom_range_lockers(&1, me.id()), 0);
        assert!(!me.is_doomed());
    }

    #[test]
    fn in_range_bounds() {
        assert!(in_range(&5, &Bound::Included(5), &Bound::Included(5)));
        assert!(!in_range(&5, &Bound::Excluded(5), &Bound::Unbounded));
        assert!(!in_range(&5, &Bound::Unbounded, &Bound::Excluded(5)));
        assert!(in_range(&5, &Bound::Unbounded, &Bound::Unbounded));
    }
}
