//! Semantic lock tables — the shared transaction state of the collection
//! classes (paper Tables 3, 6, 9).
//!
//! A semantic lock is a record "transaction H has observed abstract property
//! P of this collection". Locks are *read* locks only; writers never block —
//! they detect conflicts at commit time by scanning the lockers of every
//! abstract property they are changing and **dooming** those transactions
//! (program-directed abort). This is the optimistic concurrency control
//! choice of paper §5.1.
//!
//! # The striped lock table
//!
//! The per-key lock table (`key2lockers`) is **striped**: sharded over N
//! (power-of-two, default [`DEFAULT_STRIPES`]) stripes by key hash, each
//! stripe guarded by its own short [`parking_lot::Mutex`] — the
//! coarse-table→striped-table move that made ConcurrentHashMap-style
//! structures scale. Point locks on whole-collection properties
//! (`size_lockers`, `empty_lockers`, the sorted map's endpoint and range
//! tables) live in a dedicated **global stripe**, so size/empty/endpoint/
//! range semantics stay totally ordered. The per-transaction `locals`
//! write-buffer map is sharded the same way (by transaction id), so
//! buffering a put never contends with another thread's get.
//!
//! Lock *acquisition* happens during the transaction body (after which the
//! underlying structure is read open-nested — lock-then-read order is what
//! makes the doom protocol sound); conflict *detection* and lock *release*
//! happen inside commit/abort handlers, which the `stm` crate runs under
//! the **handler lane** (the commit path itself is sharded over per-`TVar`
//! versioned locks; see `stm`'s `clock.rs` and `docs/PROTOCOL.md`).
//!
//! Why the doom protocol stays sound without a global commit mutex:
//!
//! * Every transaction that touches a collection registers handlers, and a
//!   handler-bearing transaction holds the lane from before its memory
//!   validation until after its last handler returns. Among such
//!   transactions the lane *is* the old commit mutex: handler execution —
//!   apply-buffer, doom-scan, lock-release — is totally ordered, and a
//!   committer's doom-vs-commit decision point (the `TxHandle` state CAS)
//!   lies inside its lane hold, so "the doom failed" still implies "the
//!   victim's commit, including its handlers, serialized before mine".
//! * Writing open-nested commits (the queue's eager `poll`, the pessimistic
//!   map's in-place writes) also take the lane, so handlers' direct-mode
//!   reads and writes never interleave with them.
//! * Handler-free memory transactions never touch semantic state; they
//!   interact with collections only through `TVar`s, where per-var commit
//!   locks plus read validation (and the doom CAS, for body-time dooms by
//!   the pessimistic map) already give serializability.
//!
//! # Lock order under striping
//!
//! **handler lane → key stripes in ascending index order → global stripe →
//! var locks**, in the may-hold-while-acquiring sense; the clock is a
//! wait-free `fetch_add` drawn while var locks are held.
//!
//! * Handlers visit the stripes touched by their buffer strictly one at a
//!   time, in ascending stripe index, through
//!   [`StripedTables::for_stripes_ascending`] — no two stripe mutexes are
//!   ever held simultaneously, and the global stripe is acquired only after
//!   every key stripe has been released, so the hierarchy is trivially
//!   acyclic. Transaction bodies only ever hold a single stripe (or the
//!   global stripe) for a short insert/remove.
//! * Var locks (the backend's per-`TVar` commit locks, touched by a
//!   handler's direct-mode applies) are acquired while a stripe is held but
//!   are released by the publish itself, and nobody ever waits for the lane
//!   or a stripe while holding a var lock — so the lane-holder's direct
//!   writes, which spin on var locks only for bounded non-blocking
//!   publishes, always terminate and there is no deadlock.
//!
//! Why the per-key case analysis survives the split: a reader's key-lock
//! take and a committing writer's apply+doom-scan for that key go through
//! the *same* stripe mutex (keys hash to exactly one stripe). If the
//! reader's lock lands before the writer's scan, the scan dooms it — and
//! the doom lands, because the reader's point of no return sits inside its
//! own lane hold, which cannot overlap the writer's. If it lands after, the
//! stripe-mutex ordering means that key's apply already happened, so the
//! reader's subsequent open-nested read validates against the published
//! value. Whole-collection observers (size, empty, first/last, range) take
//! their locks in the global stripe, which the writer's handler acquires
//! **after applying every buffered write**: an observer lock that lands
//! before the writer's global-stripe scan is doomed there; one that lands
//! after is guaranteed — via the global-stripe mutex ordering and the
//! program order of the handler — that all applies happened-before its
//! subsequent read, so it observes the fully applied post-commit state.
//! Each case is exactly the old single-mutex argument, replayed per stripe.
//!
//! txlint: metrics — metrics-emitter argument spans here must not allocate
//! or format (TX014).

use crate::interval::IntervalTree;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};
use std::ops::Bound;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use stm::metrics;
use stm::trace::{self, LockKind};
use stm::{TxHandle, TxState};

/// Default number of key stripes in a collection's semantic lock table
/// (power of two; tune per instance with the `with_stripes` constructors).
pub const DEFAULT_STRIPES: usize = 16;

/// The stripe hash function: a deterministic multiply-rotate mixer (the
/// FxHash recurrence) instead of SipHash. Stripe selection runs on every
/// key-lock take — the body-side hot path — and needs speed and run-to-run
/// stability, not flooding resistance: a stripe collision only shares a
/// short mutex hold, it can never create or hide a semantic conflict
/// (see `tests/stripe_invariance.rs`).
#[derive(Default)]
pub struct StripeHasher(u64);

/// Odd multiplier with high-entropy bits (the golden-ratio constant used by
/// FxHash); multiplication diffuses each input bit upward, and
/// [`stripe_index`] folds the well-mixed high half back down before masking.
const STRIPE_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl StripeHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(STRIPE_SEED);
    }
}

impl Hasher for StripeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }
    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.mix(n as u64);
        self.mix((n >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// The stripe index `key` hashes to in a table of `nstripes` stripes
/// (callers pass a power of two; the production tables normalize). Public
/// so tests and diagnostics can predict stripe placement — this is the one
/// definition of the key→stripe map.
pub fn stripe_index<K: Hash + ?Sized>(key: &K, nstripes: usize) -> usize {
    let h = key_hash64(key);
    // Fold the high half down: the multiply mixes bits upward only, so the
    // raw low bits of an integer key's hash depend only on its low bits.
    ((h ^ (h >> 32)) & (nstripes as u64 - 1)) as usize
}

/// The full 64-bit stripe hash of a key — the value [`stripe_index`] folds
/// and masks, and the `key_hash` recorded on trace events (a stable,
/// deterministic key fingerprint that avoids formatting keys on the
/// emission path).
pub fn key_hash64<K: Hash + ?Sized>(key: &K) -> u64 {
    BuildHasherDefault::<StripeHasher>::default().hash_one(key)
}

/// How a `TransactionalSortedMap` indexes its range locks (paper §3.2: the
/// flat scanned set is the paper's choice; the interval tree is the
/// alternative it mentions — measured in the `ablation_rangeindex` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeIndexKind {
    /// A flat `Vec` scanned linearly at every committed update (paper
    /// default: simple, fast for few outstanding ranges).
    #[default]
    FlatScan,
    /// An augmented treap with `O(log n + hits)` stabbing queries (pays off
    /// with many concurrent iterators).
    IntervalTree,
}

/// The owner of a semantic lock: a top-level transaction attempt.
pub type Owner = Arc<TxHandle>;

// ----------------------------------------------------------------------
// Mode-compatibility oracle (paper Tables 1–8, distilled)
// ----------------------------------------------------------------------

/// Abstract observation modes — what one semantic lock records about a
/// collection (paper Tables 2, 5, 8). Every read-side operation of the
/// collection classes maps to a set of `(ObsMode, target)` locks; e.g.
/// `get(k)` takes `Key` on `k`, a full iteration takes `Key` on every
/// returned key plus `Size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObsMode {
    /// Presence/absence/value of one key observed (`get`, `containsKey`,
    /// `iterator.next`, queue head consumption).
    Key,
    /// Exact element count observed (`size`, exhausted iteration).
    Size,
    /// Emptiness observed as a primitive (§5.1 `isEmpty`, queue
    /// `peek`/`poll` returning nothing).
    Empty,
    /// Identity of the least key observed (`firstKey`).
    First,
    /// Identity of the greatest key observed (`lastKey`).
    Last,
    /// Every key inside an interval observed (sorted iteration, subMap).
    Range,
    /// Fullness of a bounded queue observed (`offer` returning false,
    /// blocking `put` on a full queue).
    Full,
}

impl ObsMode {
    /// All observation modes, for exhaustive matrix checks.
    pub const ALL: [ObsMode; 7] = [
        ObsMode::Key,
        ObsMode::Size,
        ObsMode::Empty,
        ObsMode::First,
        ObsMode::Last,
        ObsMode::Range,
        ObsMode::Full,
    ];

    /// Stable wire code of this mode in trace events (the index into
    /// [`stm::trace::OBS_NAMES`]).
    pub fn code(self) -> u8 {
        match self {
            ObsMode::Key => 0,
            ObsMode::Size => 1,
            ObsMode::Empty => 2,
            ObsMode::First => 3,
            ObsMode::Last => 4,
            ObsMode::Range => 5,
            ObsMode::Full => 6,
        }
    }

    /// The trace-layer lock-kind a lock in this mode lives in: one lock
    /// table per mode, with both endpoints sharing the endpoint table.
    pub fn lock_kind(self) -> LockKind {
        match self {
            ObsMode::Key => LockKind::Key,
            ObsMode::Size => LockKind::Size,
            ObsMode::Empty => LockKind::Empty,
            ObsMode::First | ObsMode::Last => LockKind::Endpoint,
            ObsMode::Range => LockKind::Range,
            ObsMode::Full => LockKind::Full,
        }
    }
}

/// Abstract effects a committing writer publishes (the write-side axis of
/// paper Tables 1, 4, 7). Every update operation maps to a set of effects;
/// e.g. `put` of a brand-new key is `KeyWrite + SizeChange` (plus
/// `ZeroCross` when the map was empty, plus `FirstChange`/`LastChange` when
/// it moves an endpoint of a sorted map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateEffect {
    /// A key was added, removed, or its value replaced.
    KeyWrite,
    /// The element count changed.
    SizeChange,
    /// The count crossed zero in either direction (§5.1 `isEmpty` lock;
    /// queue emptiness invalidated by a producing commit).
    ZeroCross,
    /// The least key changed.
    FirstChange,
    /// The greatest key changed.
    LastChange,
    /// Elements were permanently consumed (frees capacity in a bounded
    /// queue, invalidating fullness observations).
    Consume,
}

impl UpdateEffect {
    /// All update effects, for exhaustive matrix checks.
    pub const ALL: [UpdateEffect; 6] = [
        UpdateEffect::KeyWrite,
        UpdateEffect::SizeChange,
        UpdateEffect::ZeroCross,
        UpdateEffect::FirstChange,
        UpdateEffect::LastChange,
        UpdateEffect::Consume,
    ];

    /// Stable wire code of this effect in trace events (the index into
    /// [`stm::trace::EFFECT_NAMES`]).
    pub fn code(self) -> u8 {
        match self {
            UpdateEffect::KeyWrite => 0,
            UpdateEffect::SizeChange => 1,
            UpdateEffect::ZeroCross => 2,
            UpdateEffect::FirstChange => 3,
            UpdateEffect::LastChange => 4,
            UpdateEffect::Consume => 5,
        }
    }
}

/// The mode-compatibility function: `true` iff a semantic lock in mode
/// `obs` survives a committing update that publishes `effect` — i.e. the
/// two operations commute and the observer is *not* doomed.
///
/// `overlap` is whether the update's key equals the observed key
/// (`ObsMode::Key`) or falls inside the observed interval
/// (`ObsMode::Range`); it is ignored for the whole-collection modes.
///
/// Since the declarative-conflict-graph refactor this function is
/// *generated*: it looks the cell up in
/// [`generated_matrix`](crate::conflict_graph::generated_matrix), the union
/// of every in-tree class's synthesized matrix. The historic hand-written
/// table survives below as [`mode_compatible_spec`] — the oracle the
/// synthesis is checked against. The two are validated identical three
/// ways: statically by `txlint`'s conflict-matrix oracle
/// (`cargo run -p txlint -- --oracle`), which replays every table row and
/// all 84 cells, exhaustively by `crates/core/tests/oracle_matrix.rs` and
/// `conflict_graph_synthesis.rs`, and dynamically by real two-transaction
/// executions asserting the doom protocol agrees.
pub fn mode_compatible(obs: ObsMode, effect: UpdateEffect, overlap: bool) -> bool {
    crate::conflict_graph::generated_matrix().compatible(obs, effect, overlap)
}

/// The hand-written specification matrix: paper Tables 1–8 as a `match`.
///
/// This is the *oracle* the synthesized dispatch matrix
/// ([`mode_compatible`]) is checked against — it is no longer on the doom
/// protocol's dispatch path, but any drift between it and the declared
/// conflict graphs fails txlint's oracle pass and the exhaustive test
/// suites.
pub fn mode_compatible_spec(obs: ObsMode, effect: UpdateEffect, overlap: bool) -> bool {
    match (obs, effect) {
        // A key observation conflicts exactly with a write of that key.
        (ObsMode::Key, UpdateEffect::KeyWrite) => !overlap,
        // A range observation conflicts with writes landing inside it.
        (ObsMode::Range, UpdateEffect::KeyWrite) => !overlap,
        // Size observers are doomed by any size change — but NOT by a
        // value-replacing put (which publishes KeyWrite without
        // SizeChange): that asymmetry is the point of semantic locks.
        (ObsMode::Size, UpdateEffect::SizeChange) => false,
        // Emptiness-as-primitive observers survive size changes that do
        // not cross zero (§5.1).
        (ObsMode::Empty, UpdateEffect::ZeroCross) => false,
        // Endpoint observers are doomed only when their endpoint moves.
        (ObsMode::First, UpdateEffect::FirstChange) => false,
        (ObsMode::Last, UpdateEffect::LastChange) => false,
        // Fullness observers are doomed when capacity is freed.
        (ObsMode::Full, UpdateEffect::Consume) => false,
        // Everything else commutes.
        _ => true,
    }
}

/// Counters of semantic conflict detections and lock-table contention, per
/// collection instance.
///
/// The `*_conflicts` counters each correspond to at least one transaction
/// doomed because a committing writer changed an abstract property the
/// victim had observed. The `stripe_lock_spins` / `global_stripe_entries`
/// pair makes the striped-table behaviour observable: how often a stripe
/// mutex was found held (contention that striping is meant to eliminate)
/// and how often the serialized global stripe was entered at all.
#[derive(Debug, Default)]
pub struct SemanticStats {
    /// Dooms due to key locks (get/containsKey/iterator.next vs put/remove).
    pub key_conflicts: AtomicU64,
    /// Dooms due to the size lock (size/hasNext-false vs size change).
    pub size_conflicts: AtomicU64,
    /// Dooms due to range locks (sorted iteration vs put/remove in range).
    pub range_conflicts: AtomicU64,
    /// Dooms due to the first-key lock (endpoint change).
    pub first_conflicts: AtomicU64,
    /// Dooms due to the last-key lock (endpoint change).
    pub last_conflicts: AtomicU64,
    /// Dooms due to the empty lock (peek/poll-null vs put, and the
    /// `isEmpty`-as-primitive zero-crossing lock of §5.1).
    pub empty_conflicts: AtomicU64,
    /// Semantic-table lock acquisitions (key stripe or global stripe) that
    /// found the mutex held and had to block — the contention the striped
    /// table exists to remove.
    pub stripe_lock_spins: AtomicU64,
    /// Acquisitions of the global stripe (size/empty/endpoint/range point
    /// locks) — the residual serialized fraction of semantic-lock traffic.
    pub global_stripe_entries: AtomicU64,
    /// Semantic-lock acquisitions that actually reached a lock table (one
    /// per `take_*_lock` insert). With the kernel's txn-local lock cache,
    /// repeat acquisitions by the same transaction hit the cache instead,
    /// so this counts *distinct* `(kind, key)` takes per transaction —
    /// the precise denominator the amortization benches gate on.
    pub lock_acquisitions: AtomicU64,
    /// Acquisitions satisfied by the kernel's txn-local lock cache (the
    /// stripe round trips that did not happen).
    pub lock_cache_hits: AtomicU64,
    /// Interned class-name symbol for the trace layer (0 until
    /// [`SemanticStats::set_class`] runs — the kernel sets it once at
    /// collection construction).
    class: AtomicU32,
}

impl SemanticStats {
    /// Sum of all semantic conflicts (contention counters excluded).
    pub fn total(&self) -> u64 {
        self.key_conflicts.load(Ordering::Relaxed)
            + self.size_conflicts.load(Ordering::Relaxed)
            + self.range_conflicts.load(Ordering::Relaxed)
            + self.first_conflicts.load(Ordering::Relaxed)
            + self.last_conflicts.load(Ordering::Relaxed)
            + self.empty_conflicts.load(Ordering::Relaxed)
    }

    pub(crate) fn bump(&self, which: &AtomicU64, n: u64) {
        if n > 0 {
            which.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Intern `name` and attach it to this instance so every trace event the
    /// lock tables emit carries the collection's class name. Called once by
    /// `SemanticCore::new`; not on any hot path.
    pub fn set_class(&self, name: &'static str) {
        self.class
            .store(trace::intern(name).0 as u32, Ordering::Relaxed);
    }

    /// The interned class-name symbol ([`stm::trace::Sym::UNKNOWN`] when
    /// [`SemanticStats::set_class`] never ran).
    pub fn class_sym(&self) -> trace::Sym {
        trace::Sym(self.class.load(Ordering::Relaxed) as u16)
    }
}

/// Provenance of a doom sweep: which class/mode-pair/key a batch of dooms is
/// about, threaded into [`doom_others`] so every landed doom emits one trace
/// `DoomEdge` with the conflicting mode pair. Carries no allocation; built
/// on the stack at each doom dispatch point.
#[derive(Clone, Copy)]
pub(crate) struct DoomCtx<'a> {
    pub stats: &'a SemanticStats,
    pub obs: ObsMode,
    pub effect: UpdateEffect,
    /// [`key_hash64`] of the conflicting key; 0 for whole-collection locks.
    pub key_hash: u64,
}

impl DoomCtx<'_> {
    /// Record the edge `doomer → victim` in the trace. The `compatible`
    /// field re-evaluates [`mode_compatible`] for the pair (with overlap
    /// true for the keyed modes, matching how the dispatch points gate) so
    /// the trace is self-certifying: a doom edge always carries the verdict
    /// that justified it.
    pub(crate) fn emit(&self, doomer: u64, victim: u64) {
        let overlap = matches!(self.obs, ObsMode::Key | ObsMode::Range);
        trace::doom_edge(
            doomer,
            victim,
            self.stats.class_sym(),
            self.obs.lock_kind(),
            self.key_hash,
            self.obs.code(),
            self.effect.code(),
            mode_compatible(self.obs, self.effect, overlap),
        );
        // Dimensional doom counter. Key dooms are attributed to the key's
        // default-grid stripe bucket (the fold `stripe_index` applies, at
        // DEFAULT_STRIPES width); every other mode's lock lives in the
        // global stripe.
        let stripe = match self.obs {
            ObsMode::Key => (self.key_hash ^ (self.key_hash >> 32)) & (DEFAULT_STRIPES as u64 - 1),
            _ => u64::MAX,
        };
        metrics::doom_landed(self.stats.class_sym(), stripe);
    }
}

/// Doom every *other*, still-active owner in `owners`; prune finished ones.
/// Returns how many dooms landed. This is the single doom-landing point for
/// set-shaped lock tables (ranges have their own in
/// [`SortedLockTables::doom_range_lockers`]): each landed doom records the
/// `doomer → victim` edge described by `ctx` in the trace.
// `Owner` hashes by `TxHandle` id, which never changes after creation; the
// handle's atomics do not participate in Hash/Eq.
#[allow(clippy::mutable_key_type)]
pub(crate) fn doom_others(owners: &mut HashSet<Owner>, self_id: u64, ctx: &DoomCtx) -> u64 {
    let mut doomed = 0;
    owners.retain(|o| {
        if o.id() == self_id {
            return true;
        }
        match o.state() {
            TxState::Active => {
                if o.doom_from(self_id) {
                    doomed += 1;
                    ctx.emit(self_id, o.id());
                }
                true
            }
            // Finished transactions should have released their locks; if one
            // lingers (e.g. a panicking thread), prune it here.
            _ => false,
        }
    });
    doomed
}

// ----------------------------------------------------------------------
// Per-stripe and global-stripe lock-table payloads
// ----------------------------------------------------------------------

/// One stripe of the `key2lockers` table (paper Table 3, sharded by key
/// hash). Every key maps to exactly one stripe, so the per-key lock/apply/
/// doom-scan protocol runs entirely under this stripe's mutex.
#[derive(Debug)]
pub(crate) struct KeyLockShard<K> {
    pub key2lockers: HashMap<K, HashSet<Owner>>,
}

impl<K> Default for KeyLockShard<K> {
    fn default() -> Self {
        KeyLockShard {
            key2lockers: HashMap::new(),
        }
    }
}

impl<K: Clone + Eq + Hash> KeyLockShard<K> {
    pub(crate) fn take_key_lock(&mut self, key: K, owner: Owner, stats: &SemanticStats) {
        stats.bump(&stats.lock_acquisitions, 1);
        trace::sem_lock_acquired(
            owner.id(),
            stats.class_sym(),
            LockKind::Key,
            key_hash64(&key),
        );
        self.key2lockers.entry(key).or_default().insert(owner);
    }

    /// A committing writer is adding/removing/replacing `key`: doom readers.
    pub(crate) fn doom_key_lockers(&mut self, key: &K, self_id: u64, ctx: &DoomCtx) -> u64 {
        match self.key2lockers.get_mut(key) {
            None => 0,
            Some(owners) => {
                let n = doom_others(owners, self_id, ctx);
                if owners.is_empty() {
                    self.key2lockers.remove(key);
                }
                n
            }
        }
    }

    /// Doom every key observer of `key` whose mode is incompatible with
    /// `effect` per [`mode_compatible`] — the key-side dispatch point of
    /// the doom protocol. Returns how many dooms landed.
    pub(crate) fn doom_update(
        &mut self,
        effect: UpdateEffect,
        key: &K,
        self_id: u64,
        stats: &SemanticStats,
    ) -> u64 {
        if !mode_compatible(ObsMode::Key, effect, true) {
            let ctx = DoomCtx {
                stats,
                obs: ObsMode::Key,
                effect,
                key_hash: key_hash64(key),
            };
            self.doom_key_lockers(key, self_id, &ctx)
        } else {
            0
        }
    }

    /// Release every key lock held on behalf of `owner_id`. `keys` is the
    /// owner's thread-local `keyLocks` set filtered to this stripe — kept
    /// precisely so release does not have to enumerate `key2lockers`
    /// (paper §3.1).
    pub(crate) fn release_keys<'a>(
        &mut self,
        owner_id: u64,
        keys: impl Iterator<Item = &'a K>,
        stats: &SemanticStats,
    ) where
        K: 'a,
    {
        let mut released = 0u64;
        for k in keys {
            if let Some(owners) = self.key2lockers.get_mut(k) {
                owners.retain(|o| o.id() != owner_id);
                if owners.is_empty() {
                    self.key2lockers.remove(k);
                }
                released += 1;
            }
        }
        trace::sem_lock_released(owner_id, stats.class_sym(), LockKind::Key, released);
    }

    /// Number of distinct keys currently locked in this stripe.
    pub(crate) fn locked_key_count(&self) -> usize {
        self.key2lockers.len()
    }
}

/// The whole-collection point locks of the map abstraction — the global
/// stripe's payload (paper Table 3 `sizeLockers`, plus the §5.1 `isEmpty`
/// zero-crossing lock set).
#[derive(Debug, Default)]
pub(crate) struct PointLocks {
    pub size_lockers: HashSet<Owner>,
    pub empty_lockers: HashSet<Owner>,
}

impl PointLocks {
    pub(crate) fn take_size_lock(&mut self, owner: Owner, stats: &SemanticStats) {
        stats.bump(&stats.lock_acquisitions, 1);
        trace::sem_lock_acquired(owner.id(), stats.class_sym(), LockKind::Size, 0);
        self.size_lockers.insert(owner);
    }

    pub(crate) fn take_empty_lock(&mut self, owner: Owner, stats: &SemanticStats) {
        stats.bump(&stats.lock_acquisitions, 1);
        trace::sem_lock_acquired(owner.id(), stats.class_sym(), LockKind::Empty, 0);
        self.empty_lockers.insert(owner);
    }

    /// A committing writer changed the size: doom size observers.
    pub(crate) fn doom_size_lockers(&mut self, self_id: u64, ctx: &DoomCtx) -> u64 {
        doom_others(&mut self.size_lockers, self_id, ctx)
    }

    /// A committing writer made the size cross zero: doom emptiness
    /// observers (the `isEmpty`-as-primitive lock).
    pub(crate) fn doom_empty_lockers(&mut self, self_id: u64, ctx: &DoomCtx) -> u64 {
        doom_others(&mut self.empty_lockers, self_id, ctx)
    }

    /// Doom every point-lock observer whose mode is incompatible with
    /// `effect` per [`mode_compatible`]. Returns `(size_doomed,
    /// empty_doomed)` so callers can attribute the dooms to per-mode
    /// [`SemanticStats`] counters.
    pub(crate) fn doom_update(
        &mut self,
        effect: UpdateEffect,
        self_id: u64,
        stats: &SemanticStats,
    ) -> (u64, u64) {
        let by_size = if !mode_compatible(ObsMode::Size, effect, false) {
            let ctx = DoomCtx {
                stats,
                obs: ObsMode::Size,
                effect,
                key_hash: 0,
            };
            self.doom_size_lockers(self_id, &ctx)
        } else {
            0
        };
        let by_empty = if !mode_compatible(ObsMode::Empty, effect, false) {
            let ctx = DoomCtx {
                stats,
                obs: ObsMode::Empty,
                effect,
                key_hash: 0,
            };
            self.doom_empty_lockers(self_id, &ctx)
        } else {
            0
        };
        (by_size, by_empty)
    }

    /// Release every point lock held on behalf of `owner_id`.
    pub(crate) fn release_owner(&mut self, owner_id: u64, stats: &SemanticStats) {
        let sizes = self.size_lockers.len();
        let empties = self.empty_lockers.len();
        self.size_lockers.retain(|o| o.id() != owner_id);
        self.empty_lockers.retain(|o| o.id() != owner_id);
        let sym = stats.class_sym();
        trace::sem_lock_released(
            owner_id,
            sym,
            LockKind::Size,
            (sizes - self.size_lockers.len()) as u64,
        );
        trace::sem_lock_released(
            owner_id,
            sym,
            LockKind::Empty,
            (empties - self.empty_lockers.len()) as u64,
        );
    }
}

// ----------------------------------------------------------------------
// The striped table container (ordered-acquisition surface)
// ----------------------------------------------------------------------

/// A single counted mutex around a point-lock table — the **global stripe**.
///
/// Every entry is tallied in [`SemanticStats::global_stripe_entries`] (and
/// the process-wide [`stm::StatsSnapshot`]), and a contended acquisition in
/// [`SemanticStats::stripe_lock_spins`], so the serialized fraction of
/// semantic-lock traffic is observable.
pub(crate) struct GlobalStripe<G> {
    inner: Mutex<G>,
}

impl<G> GlobalStripe<G> {
    pub(crate) fn new(payload: G) -> Self {
        GlobalStripe {
            inner: Mutex::new(payload),
        }
    }

    /// Run `f` under the global stripe. In the striped lock order this
    /// mutex ranks **after every key stripe**: callers must not hold any
    /// stripe when entering (all helpers here guarantee that structurally —
    /// each visit closes its stripe before the next acquisition).
    pub(crate) fn with<R>(&self, stats: &SemanticStats, f: impl FnOnce(&mut G) -> R) -> R {
        stats.global_stripe_entries.fetch_add(1, Ordering::Relaxed);
        stm::record_global_stripe_entry();
        let mut guard = match self.inner.try_lock() {
            Some(g) => g,
            None => {
                stats.stripe_lock_spins.fetch_add(1, Ordering::Relaxed);
                stm::record_stripe_lock_spin();
                // Global-stripe contention: stripe index u64::MAX by
                // convention (see `trace::TraceEvent::SemLockBlocked`).
                trace::sem_lock_blocked(stats.class_sym(), u64::MAX);
                metrics::stripe_blocked(stats.class_sym(), u64::MAX);
                let wait_t0 = metrics::timer();
                let g = self.inner.lock();
                metrics::hist_elapsed(metrics::HistKind::SemLockWait, wait_t0);
                g
            }
        };
        f(&mut guard)
    }
}

/// The striped semantic lock table: `N` key stripes (payload `S`, one per
/// hash shard) plus the global stripe (payload `G`, the point locks).
///
/// This type is the **only** surface through which collection code touches
/// stripes — acquisition order is encoded here once ([`Self::with_stripe_for`]
/// for a body-side single-stripe visit, [`Self::for_stripes_ascending`] for
/// a handler's multi-stripe sweep, [`Self::with_global`] last), and txlint
/// TX007 flags any raw `stripes[i].lock()` in files carrying the
/// semantic-tables marker.
pub(crate) struct StripedTables<S, G> {
    stripes: Box<[Mutex<S>]>,
    global: GlobalStripe<G>,
}

/// Round a requested stripe count to the implementation grid: at least 1,
/// power of two (so the hash→stripe map is a mask).
pub(crate) fn normalize_stripes(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Stable counting-sort placement: item indices `0..len` ordered by
/// ascending `bucket_of(i)` (each in `0..nbuckets`). O(len + nbuckets) and
/// comparison-free — commit/abort handlers use it to group their footprint
/// by stripe, where a comparison sort would branch-mispredict on every
/// element (stripe ids are hashes, i.e. random).
pub(crate) fn bucket_order(
    len: usize,
    nbuckets: usize,
    bucket_of: impl Fn(usize) -> u32,
) -> Vec<u32> {
    let mut counts = vec![0u32; nbuckets + 1];
    for i in 0..len {
        counts[bucket_of(i) as usize + 1] += 1;
    }
    for b in 1..=nbuckets {
        counts[b] += counts[b - 1];
    }
    let mut order = vec![0u32; len];
    for i in 0..len {
        let slot = &mut counts[bucket_of(i) as usize];
        order[*slot as usize] = i as u32;
        *slot += 1;
    }
    order
}

impl<S: Default, G> StripedTables<S, G> {
    /// Create with `nstripes` key stripes (rounded up to a power of two)
    /// and the given global-stripe payload.
    pub(crate) fn new(nstripes: usize, global: G) -> Self {
        let n = normalize_stripes(nstripes);
        let stripes: Box<[Mutex<S>]> = (0..n).map(|_| Mutex::new(S::default())).collect();
        StripedTables {
            stripes,
            global: GlobalStripe::new(global),
        }
    }
}

impl<S, G> StripedTables<S, G> {
    /// Number of key stripes (always a power of two).
    pub(crate) fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe index a key hashes to ([`stripe_index`] at this table's
    /// stripe count — deterministic, stable across runs).
    pub(crate) fn stripe_of<K: Hash>(&self, key: &K) -> usize {
        stripe_index(key, self.stripes.len())
    }

    fn lock_stripe(&self, idx: usize, stats: &SemanticStats) -> parking_lot::MutexGuard<'_, S> {
        match self.stripes[idx].try_lock() {
            Some(g) => g,
            None => {
                stats.stripe_lock_spins.fetch_add(1, Ordering::Relaxed);
                stm::record_stripe_lock_spin();
                trace::sem_lock_blocked(stats.class_sym(), idx as u64);
                metrics::stripe_blocked(stats.class_sym(), idx as u64);
                let wait_t0 = metrics::timer();
                let g = self.stripes[idx].lock();
                metrics::hist_elapsed(metrics::HistKind::SemLockWait, wait_t0);
                g
            }
        }
    }

    /// Body-side single-stripe visit: run `f` under the stripe `key` hashes
    /// to. The caller must hold no other stripe (all callers are leaf
    /// operations; the closure must not re-enter the table).
    pub(crate) fn with_stripe_for<K: Hash, R>(
        &self,
        key: &K,
        stats: &SemanticStats,
        f: impl FnOnce(&mut S) -> R,
    ) -> R {
        let mut guard = self.lock_stripe(self.stripe_of(key), stats);
        f(&mut guard)
    }

    /// Handler-side multi-stripe sweep: visit each listed stripe exactly
    /// once, **in ascending stripe-index order, holding one stripe at a
    /// time** (the previous stripe is released before the next is
    /// acquired). Indices are deduplicated; out-of-range indices would be a
    /// logic bug and panic. This is the ordered-acquisition helper the
    /// striped lock order (module docs) is proved against.
    pub(crate) fn for_stripes_ascending(
        &self,
        indices: impl IntoIterator<Item = usize>,
        stats: &SemanticStats,
        mut f: impl FnMut(usize, &mut S),
    ) {
        let mut idxs: Vec<usize> = indices.into_iter().collect();
        idxs.sort_unstable();
        idxs.dedup();
        for i in idxs {
            let mut guard = self.lock_stripe(i, stats);
            f(i, &mut guard);
        }
    }

    /// Run `f` under the global stripe (point locks). Ranks after every key
    /// stripe in the lock order: never called with a stripe held.
    pub(crate) fn with_global<R>(&self, stats: &SemanticStats, f: impl FnOnce(&mut G) -> R) -> R {
        self.global.with(stats, f)
    }
}

/// Striped table of the hash-map abstraction: key stripes + map point locks.
pub(crate) type MapTables<K> = StripedTables<KeyLockShard<K>, PointLocks>;

/// Global-stripe payload of the sorted-map abstraction: the map point locks
/// plus the endpoint/range tables of paper Table 6. All order-based
/// semantics live here so they stay totally ordered.
pub(crate) struct SortedGlobal<K> {
    pub points: PointLocks,
    pub sorted: SortedLockTables<K>,
}

impl<K: Clone + Ord> SortedGlobal<K> {
    pub(crate) fn with_kind(kind: RangeIndexKind) -> Self {
        SortedGlobal {
            points: PointLocks::default(),
            sorted: SortedLockTables::with_kind(kind),
        }
    }
}

/// Striped table of the sorted-map abstraction.
pub(crate) type SortedTables<K> = StripedTables<KeyLockShard<K>, SortedGlobal<K>>;

// ----------------------------------------------------------------------
// Sharded per-transaction local state
// ----------------------------------------------------------------------

/// The per-transaction local-state table (`locals`), sharded by top-level
/// transaction id so that buffering a write never contends with another
/// thread's operation. Ids are drawn from a process-wide sequence, so a
/// plain `id & mask` spreads concurrent transactions across shards.
pub(crate) struct LocalTable<L> {
    shards: Box<[Mutex<HashMap<u64, L>>]>,
    mask: u64,
}

impl<L> LocalTable<L> {
    /// Create with `nshards` shards (rounded up to a power of two —
    /// collections pass their stripe count).
    pub(crate) fn new(nshards: usize) -> Self {
        let n = normalize_stripes(nshards);
        let shards: Box<[Mutex<HashMap<u64, L>>]> =
            (0..n).map(|_| Mutex::new(HashMap::new())).collect();
        LocalTable {
            shards,
            mask: (n - 1) as u64,
        }
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, L>> {
        &self.shards[(id & self.mask) as usize]
    }

    /// Whether local state exists for `id` (test-only probe; production
    /// registration checks moved to the transaction's own extension slot —
    /// the deferred-registration fast path never asks the shared table).
    #[cfg(test)]
    pub(crate) fn contains(&self, id: u64) -> bool {
        self.shard(id).lock().contains_key(&id)
    }

    /// Run `f` on `id`'s local state, creating it if absent.
    pub(crate) fn with<R>(&self, id: u64, f: impl FnOnce(&mut L) -> R) -> R
    where
        L: Default,
    {
        let mut shard = self.shard(id).lock();
        f(shard.entry(id).or_default())
    }

    /// Run `f` on `id`'s local state **only if it exists** — the
    /// non-creating variant used by local-undo closures and handlers, so a
    /// compensation path racing a completed removal can never resurrect an
    /// entry (the stale-local hazard).
    pub(crate) fn update<R>(&self, id: u64, f: impl FnOnce(&mut L) -> R) -> Option<R> {
        let mut shard = self.shard(id).lock();
        shard.get_mut(&id).map(f)
    }

    /// Remove and return `id`'s local state (commit/abort handlers: the
    /// single point where an attempt's local state leaves the table).
    pub(crate) fn remove(&self, id: u64) -> Option<L> {
        self.shard(id).lock().remove(&id)
    }

    /// Total entries across all shards (diagnostics: residual entries after
    /// all transactions finished indicate a leak).
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// A range lock: owner has observed all keys in the interval. Identified by
/// a stable id so iterators can grow their range as they advance even while
/// the table compacts.
#[derive(Debug, Clone)]
pub(crate) struct RangeLock<K> {
    pub id: u64,
    pub owner: Owner,
    pub lower: Bound<K>,
    pub upper: Bound<K>,
}

fn in_range<K: Ord>(key: &K, lower: &Bound<K>, upper: &Bound<K>) -> bool {
    let lo_ok = match lower {
        Bound::Unbounded => true,
        Bound::Included(l) => key >= l,
        Bound::Excluded(l) => key > l,
    };
    let hi_ok = match upper {
        Bound::Unbounded => true,
        Bound::Included(u) => key <= u,
        Bound::Excluded(u) => key < u,
    };
    lo_ok && hi_ok
}

/// Whether two intervals intersect. Conservative on the one ambiguous
/// case — an open interval like `(3, 4)` counts as nonempty even when the
/// key type has no value strictly between the bounds — which is safe for
/// lock dooming (a spurious doom costs a retry, never soundness) and exact
/// for the half-open `[lo, hi)` intervals the interval map uses.
pub(crate) fn bounds_overlap<K: Ord>(
    lo1: &Bound<K>,
    hi1: &Bound<K>,
    lo2: &Bound<K>,
    hi2: &Bound<K>,
) -> bool {
    fn lower_below_upper<K: Ord>(lo: &Bound<K>, hi: &Bound<K>) -> bool {
        match (lo, hi) {
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => true,
            (Bound::Included(a), Bound::Included(b)) => a <= b,
            (Bound::Included(a), Bound::Excluded(b))
            | (Bound::Excluded(a), Bound::Included(b))
            | (Bound::Excluded(a), Bound::Excluded(b)) => a < b,
        }
    }
    lower_below_upper(lo1, hi2) && lower_below_upper(lo2, hi1)
}

/// The range-lock store: flat scanned list (paper default) or interval
/// tree (the §3.2 alternative).
pub(crate) enum RangeStore<K> {
    Flat {
        locks: Vec<RangeLock<K>>,
        next_id: u64,
    },
    Tree {
        tree: IntervalTree<K, Owner>,
        /// Owner id -> that owner's (lower, id) pairs, for O(own) release.
        by_owner: HashMap<u64, Vec<(Bound<K>, u64)>>,
        /// Lock id -> lower bound (the tree's lookup key), for extension.
        by_id: HashMap<u64, Bound<K>>,
    },
}

impl<K: Clone + Ord> RangeStore<K> {
    fn new(kind: RangeIndexKind) -> Self {
        match kind {
            RangeIndexKind::FlatScan => RangeStore::Flat {
                locks: Vec::new(),
                next_id: 0,
            },
            RangeIndexKind::IntervalTree => RangeStore::Tree {
                tree: IntervalTree::new(),
                by_owner: HashMap::new(),
                by_id: HashMap::new(),
            },
        }
    }
}

/// Additional lock tables for the `SortedMap` abstraction (paper Table 6:
/// `firstLockers`, `lastLockers`, `rangeLockers`).
pub(crate) struct SortedLockTables<K> {
    pub first_lockers: HashSet<Owner>,
    pub last_lockers: HashSet<Owner>,
    pub ranges: RangeStore<K>,
}

impl<K: Clone + Ord> Default for SortedLockTables<K> {
    fn default() -> Self {
        Self::with_kind(RangeIndexKind::FlatScan)
    }
}

impl<K: Clone + Ord> SortedLockTables<K> {
    pub(crate) fn with_kind(kind: RangeIndexKind) -> Self {
        SortedLockTables {
            first_lockers: HashSet::new(),
            last_lockers: HashSet::new(),
            ranges: RangeStore::new(kind),
        }
    }

    pub(crate) fn take_first_lock(&mut self, owner: Owner, stats: &SemanticStats) {
        stats.bump(&stats.lock_acquisitions, 1);
        trace::sem_lock_acquired(owner.id(), stats.class_sym(), LockKind::Endpoint, 0);
        self.first_lockers.insert(owner);
    }

    pub(crate) fn take_last_lock(&mut self, owner: Owner, stats: &SemanticStats) {
        stats.bump(&stats.lock_acquisitions, 1);
        trace::sem_lock_acquired(owner.id(), stats.class_sym(), LockKind::Endpoint, 0);
        self.last_lockers.insert(owner);
    }

    /// Register a range lock and return its stable id so an iterator can
    /// grow it as it advances.
    pub(crate) fn add_range_lock(
        &mut self,
        owner: Owner,
        lower: Bound<K>,
        upper: Bound<K>,
        stats: &SemanticStats,
    ) -> u64 {
        stats.bump(&stats.lock_acquisitions, 1);
        trace::sem_lock_acquired(owner.id(), stats.class_sym(), LockKind::Range, 0);
        match &mut self.ranges {
            RangeStore::Flat { locks, next_id } => {
                let id = *next_id;
                *next_id += 1;
                locks.push(RangeLock {
                    id,
                    owner,
                    lower,
                    upper,
                });
                id
            }
            RangeStore::Tree {
                tree,
                by_owner,
                by_id,
            } => {
                let owner_id = owner.id();
                let id = tree.insert(lower.clone(), upper, owner);
                by_owner
                    .entry(owner_id)
                    .or_default()
                    .push((lower.clone(), id));
                by_id.insert(id, lower);
                id
            }
        }
    }

    /// Extend the upper bound of a previously registered range lock.
    pub(crate) fn extend_range_upper(&mut self, id: u64, upper: Bound<K>) {
        match &mut self.ranges {
            RangeStore::Flat { locks, .. } => {
                if let Some(r) = locks.iter_mut().find(|r| r.id == id) {
                    r.upper = upper;
                }
            }
            RangeStore::Tree { tree, by_id, .. } => {
                if let Some(lower) = by_id.get(&id) {
                    tree.extend_upper(&lower.clone(), id, upper);
                }
            }
        }
    }

    /// A committing writer touched `key`: doom owners of covering ranges.
    /// The range store is the one lock table whose dooms do not go through
    /// [`doom_others`] (overlap is per-lock), so it lands dooms and emits
    /// edges itself via `ctx`.
    pub(crate) fn doom_range_lockers(&mut self, key: &K, self_id: u64, ctx: &DoomCtx) -> u64 {
        let mut doomed = 0;
        match &mut self.ranges {
            RangeStore::Flat { locks, .. } => {
                locks.retain(|r| {
                    if r.owner.id() == self_id {
                        return true;
                    }
                    match r.owner.state() {
                        TxState::Active => {
                            if in_range(key, &r.lower, &r.upper) && r.owner.doom_from(self_id) {
                                doomed += 1;
                                ctx.emit(self_id, r.owner.id());
                            }
                            true
                        }
                        _ => false,
                    }
                });
            }
            RangeStore::Tree { tree, .. } => {
                tree.stab(key, &mut |_, owner| {
                    if owner.id() != self_id
                        && owner.state() == TxState::Active
                        && owner.doom_from(self_id)
                    {
                        doomed += 1;
                        ctx.emit(self_id, owner.id());
                    }
                });
            }
        }
        doomed
    }

    /// A committing writer touched every key in `[lower, upper]`: doom
    /// owners of range locks that *intersect* the written span. The
    /// interval-map class publishes interval-valued writes, for which the
    /// point-stab of [`doom_range_lockers`] is unsound (a reader's range
    /// strictly inside the written interval would never be stabbed).
    pub(crate) fn doom_span(
        &mut self,
        lower: &Bound<K>,
        upper: &Bound<K>,
        self_id: u64,
        ctx: &DoomCtx,
    ) -> u64 {
        let mut doomed = 0;
        match &mut self.ranges {
            RangeStore::Flat { locks, .. } => {
                locks.retain(|r| {
                    if r.owner.id() == self_id {
                        return true;
                    }
                    match r.owner.state() {
                        TxState::Active => {
                            if bounds_overlap(&r.lower, &r.upper, lower, upper)
                                && r.owner.doom_from(self_id)
                            {
                                doomed += 1;
                                ctx.emit(self_id, r.owner.id());
                            }
                            true
                        }
                        _ => false,
                    }
                });
            }
            RangeStore::Tree { tree, .. } => {
                tree.intersecting(lower, upper, &mut |_, owner| {
                    if owner.id() != self_id
                        && owner.state() == TxState::Active
                        && owner.doom_from(self_id)
                    {
                        doomed += 1;
                        ctx.emit(self_id, owner.id());
                    }
                });
            }
        }
        doomed
    }

    /// Span-valued counterpart of [`SortedLockTables::doom_update`] for the
    /// `Range`-mode slice only: gate the intersection dooms on
    /// [`mode_compatible`] and charge them to the range-conflict counter.
    pub(crate) fn doom_update_span(
        &mut self,
        effect: UpdateEffect,
        lower: &Bound<K>,
        upper: &Bound<K>,
        span_hash: u64,
        self_id: u64,
        stats: &SemanticStats,
    ) -> u64 {
        if mode_compatible(ObsMode::Range, effect, true) {
            return 0;
        }
        let ctx = DoomCtx {
            stats,
            obs: ObsMode::Range,
            effect,
            key_hash: span_hash,
        };
        let doomed = self.doom_span(lower, upper, self_id, &ctx);
        stats.bump(&stats.range_conflicts, doomed);
        doomed
    }

    pub(crate) fn doom_first_lockers(&mut self, self_id: u64, ctx: &DoomCtx) -> u64 {
        doom_others(&mut self.first_lockers, self_id, ctx)
    }

    pub(crate) fn doom_last_lockers(&mut self, self_id: u64, ctx: &DoomCtx) -> u64 {
        doom_others(&mut self.last_lockers, self_id, ctx)
    }

    /// Sorted-side counterpart of [`KeyLockShard::doom_update`]: dooms
    /// range/first/last observers incompatible with `effect` per
    /// [`mode_compatible`]. Returns `(range_doomed, first_doomed,
    /// last_doomed)`. `key_hash` is [`key_hash64`] of `key`, computed by
    /// the caller — `K` is only `Ord` here.
    pub(crate) fn doom_update(
        &mut self,
        effect: UpdateEffect,
        key: Option<&K>,
        key_hash: u64,
        self_id: u64,
        stats: &SemanticStats,
    ) -> (u64, u64, u64) {
        let mut by_range = 0;
        if let Some(k) = key {
            // Overlap for Range mode is evaluated per lock inside
            // doom_range_lockers; mode_compatible gates whether the effect
            // class can invalidate ranges at all.
            if !mode_compatible(ObsMode::Range, effect, true) {
                let ctx = DoomCtx {
                    stats,
                    obs: ObsMode::Range,
                    effect,
                    key_hash,
                };
                by_range = self.doom_range_lockers(k, self_id, &ctx);
            }
        }
        let by_first = if !mode_compatible(ObsMode::First, effect, false) {
            let ctx = DoomCtx {
                stats,
                obs: ObsMode::First,
                effect,
                key_hash: 0,
            };
            self.doom_first_lockers(self_id, &ctx)
        } else {
            0
        };
        let by_last = if !mode_compatible(ObsMode::Last, effect, false) {
            let ctx = DoomCtx {
                stats,
                obs: ObsMode::Last,
                effect,
                key_hash: 0,
            };
            self.doom_last_lockers(self_id, &ctx)
        } else {
            0
        };
        (by_range, by_first, by_last)
    }

    pub(crate) fn release_owner(&mut self, owner_id: u64, stats: &SemanticStats) {
        let endpoints = self.first_lockers.len() + self.last_lockers.len();
        self.first_lockers.retain(|o| o.id() != owner_id);
        self.last_lockers.retain(|o| o.id() != owner_id);
        let endpoints_released = endpoints - self.first_lockers.len() - self.last_lockers.len();
        let mut ranges_released = 0u64;
        match &mut self.ranges {
            RangeStore::Flat { locks, .. } => {
                locks.retain(|r| {
                    let keep = r.owner.id() != owner_id;
                    if !keep {
                        ranges_released += 1;
                    }
                    keep
                });
            }
            RangeStore::Tree {
                tree,
                by_owner,
                by_id,
            } => {
                if let Some(mine) = by_owner.remove(&owner_id) {
                    for (lower, id) in mine {
                        tree.remove(&lower, id);
                        by_id.remove(&id);
                        ranges_released += 1;
                    }
                }
            }
        }
        let sym = stats.class_sym();
        trace::sem_lock_released(owner_id, sym, LockKind::Endpoint, endpoints_released as u64);
        trace::sem_lock_released(owner_id, sym, LockKind::Range, ranges_released);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner() -> Owner {
        TxHandle::new(0)
    }

    /// Build a doom context for unit tests (tracing is off here, so the
    /// emission side is inert; `trace_provenance.rs` covers it live).
    fn ctx<'a>(stats: &'a SemanticStats, obs: ObsMode, effect: UpdateEffect) -> DoomCtx<'a> {
        DoomCtx {
            stats,
            obs,
            effect,
            key_hash: 0,
        }
    }

    #[test]
    fn key_lock_doom_hits_only_other_active_owners() {
        let stats = SemanticStats::default();
        let mut t: KeyLockShard<u32> = KeyLockShard::default();
        let me = owner();
        let victim = owner();
        t.take_key_lock(7, me.clone(), &stats);
        t.take_key_lock(7, victim.clone(), &stats);
        let doomed = t.doom_key_lockers(
            &7,
            me.id(),
            &ctx(&stats, ObsMode::Key, UpdateEffect::KeyWrite),
        );
        assert_eq!(doomed, 1);
        assert!(victim.is_doomed());
        assert!(!me.is_doomed());
    }

    #[test]
    fn doom_missing_key_is_zero() {
        let stats = SemanticStats::default();
        let mut t: KeyLockShard<u32> = KeyLockShard::default();
        assert_eq!(
            t.doom_key_lockers(&1, 0, &ctx(&stats, ObsMode::Key, UpdateEffect::KeyWrite)),
            0
        );
    }

    #[test]
    fn release_removes_all_owner_locks() {
        let stats = SemanticStats::default();
        let mut shard: KeyLockShard<u32> = KeyLockShard::default();
        let mut points = PointLocks::default();
        let me = owner();
        shard.take_key_lock(1, me.clone(), &stats);
        shard.take_key_lock(2, me.clone(), &stats);
        points.take_size_lock(me.clone(), &stats);
        let keys: Vec<u32> = vec![1, 2];
        shard.release_keys(me.id(), keys.iter(), &stats);
        points.release_owner(me.id(), &stats);
        assert_eq!(shard.locked_key_count(), 0);
        assert_eq!(
            points.doom_size_lockers(
                u64::MAX,
                &ctx(&stats, ObsMode::Size, UpdateEffect::SizeChange)
            ),
            0
        );
    }

    #[test]
    #[allow(clippy::mutable_key_type)]
    fn finished_owners_are_pruned_not_doomed() {
        let stats = SemanticStats::default();
        let mut t = PointLocks::default();
        let dead = owner();
        // Simulate a completed transaction lingering in the table.
        let mut set = HashSet::new();
        set.insert(dead.clone());
        t.size_lockers = set;
        // mark_committed is crate-private to stm; emulate via doom->abort path
        // is not possible here, so use an Active owner and verify doom, then
        // check pruning with the doomed-but-aborted state is covered by the
        // integration tests.
        let n = t.doom_size_lockers(
            u64::MAX,
            &ctx(&stats, ObsMode::Size, UpdateEffect::SizeChange),
        );
        assert_eq!(n, 1);
    }

    #[test]
    fn range_lock_covers_and_grows() {
        let stats = SemanticStats::default();
        let rctx = ctx(&stats, ObsMode::Range, UpdateEffect::KeyWrite);
        let mut t: SortedLockTables<u32> = SortedLockTables::default();
        let me = owner();
        let victim = owner();
        let idx = t.add_range_lock(
            victim.clone(),
            Bound::Included(10),
            Bound::Included(20),
            &stats,
        );
        assert_eq!(t.doom_range_lockers(&5, me.id(), &rctx), 0);
        assert_eq!(t.doom_range_lockers(&15, me.id(), &rctx), 1);
        assert!(victim.is_doomed());

        let victim2 = owner();
        let id2 = t.add_range_lock(
            victim2.clone(),
            Bound::Included(30),
            Bound::Excluded(31),
            &stats,
        );
        t.extend_range_upper(id2, Bound::Included(40));
        assert_eq!(t.doom_range_lockers(&40, me.id(), &rctx), 1);
        assert!(victim2.is_doomed());
        let _ = idx;
    }

    #[test]
    fn range_owner_not_self_doomed() {
        let stats = SemanticStats::default();
        let mut t: SortedLockTables<u32> = SortedLockTables::default();
        let me = owner();
        t.add_range_lock(me.clone(), Bound::Unbounded, Bound::Unbounded, &stats);
        assert_eq!(
            t.doom_range_lockers(
                &1,
                me.id(),
                &ctx(&stats, ObsMode::Range, UpdateEffect::KeyWrite)
            ),
            0
        );
        assert!(!me.is_doomed());
    }

    #[test]
    fn mode_compatibility_matrix_spot_checks() {
        use {ObsMode as O, UpdateEffect as E};
        // Table 1/2: get(k) vs put(k) conflicts; vs put(k') commutes.
        assert!(!mode_compatible(O::Key, E::KeyWrite, true));
        assert!(mode_compatible(O::Key, E::KeyWrite, false));
        // Table 1: size vs value-replacing put (KeyWrite, no SizeChange).
        assert!(mode_compatible(O::Size, E::KeyWrite, true));
        assert!(!mode_compatible(O::Size, E::SizeChange, false));
        // §5.1: isEmpty-as-primitive survives non-crossing size changes.
        assert!(mode_compatible(O::Empty, E::SizeChange, false));
        assert!(!mode_compatible(O::Empty, E::ZeroCross, false));
        // Tables 4/5: range iteration vs in/out-of-range writes.
        assert!(!mode_compatible(O::Range, E::KeyWrite, true));
        assert!(mode_compatible(O::Range, E::KeyWrite, false));
        // Tables 7/8: queue fullness freed only by consumption.
        assert!(!mode_compatible(O::Full, E::Consume, false));
        assert!(mode_compatible(O::Full, E::KeyWrite, false));
    }

    #[test]
    fn doom_update_routes_through_mode_compatibility() {
        let stats = SemanticStats::default();
        let mut shard: KeyLockShard<u32> = KeyLockShard::default();
        let mut points = PointLocks::default();
        let me = owner();
        let key_watcher = owner();
        let size_watcher = owner();
        let empty_watcher = owner();
        shard.take_key_lock(7, key_watcher.clone(), &stats);
        points.take_size_lock(size_watcher.clone(), &stats);
        points.take_empty_lock(empty_watcher.clone(), &stats);

        // A value-replacing put: dooms the key watcher only.
        let k = shard.doom_update(UpdateEffect::KeyWrite, &7, me.id(), &stats);
        let (s, e) = points.doom_update(UpdateEffect::KeyWrite, me.id(), &stats);
        assert_eq!((k, s, e), (1, 0, 0));
        assert!(key_watcher.is_doomed());
        assert!(!size_watcher.is_doomed() && !empty_watcher.is_doomed());

        // A size change without zero crossing: dooms the size watcher only.
        let (s, e) = points.doom_update(UpdateEffect::SizeChange, me.id(), &stats);
        assert_eq!((s, e), (1, 0));
        assert!(!empty_watcher.is_doomed());

        // Zero crossing: dooms the emptiness watcher.
        let (_, e) = points.doom_update(UpdateEffect::ZeroCross, me.id(), &stats);
        assert_eq!(e, 1);
        assert!(empty_watcher.is_doomed());
    }

    #[test]
    fn sorted_doom_update_endpoints_and_ranges() {
        let stats = SemanticStats::default();
        let mut t: SortedLockTables<u32> = SortedLockTables::default();
        let me = owner();
        let ranger = owner();
        let firster = owner();
        t.add_range_lock(
            ranger.clone(),
            Bound::Included(10),
            Bound::Included(20),
            &stats,
        );
        t.take_first_lock(firster.clone(), &stats);

        let (r, f, l) = t.doom_update(
            UpdateEffect::KeyWrite,
            Some(&15),
            key_hash64(&15),
            me.id(),
            &stats,
        );
        assert_eq!((r, f, l), (1, 0, 0));
        assert!(ranger.is_doomed() && !firster.is_doomed());

        let (r, f, _) = t.doom_update(UpdateEffect::FirstChange, None, 0, me.id(), &stats);
        assert_eq!((r, f), (0, 1));
        assert!(firster.is_doomed());
    }

    #[test]
    fn in_range_bounds() {
        assert!(in_range(&5, &Bound::Included(5), &Bound::Included(5)));
        assert!(!in_range(&5, &Bound::Excluded(5), &Bound::Unbounded));
        assert!(!in_range(&5, &Bound::Unbounded, &Bound::Excluded(5)));
        assert!(in_range(&5, &Bound::Unbounded, &Bound::Unbounded));
    }

    // ------------------------------------------------------------------
    // Striped-table mechanics
    // ------------------------------------------------------------------

    #[test]
    fn stripe_counts_normalize_to_powers_of_two() {
        assert_eq!(normalize_stripes(0), 1);
        assert_eq!(normalize_stripes(1), 1);
        assert_eq!(normalize_stripes(3), 4);
        assert_eq!(normalize_stripes(16), 16);
        assert_eq!(normalize_stripes(17), 32);
    }

    #[test]
    fn stripe_of_is_stable_and_in_range() {
        let t: MapTables<u64> = StripedTables::new(16, PointLocks::default());
        for k in 0..1000u64 {
            let s = t.stripe_of(&k);
            assert!(s < 16);
            assert_eq!(s, t.stripe_of(&k), "stripe assignment must be stable");
        }
        // With one stripe, everything maps to stripe 0.
        let t1: MapTables<u64> = StripedTables::new(1, PointLocks::default());
        for k in 0..100u64 {
            assert_eq!(t1.stripe_of(&k), 0);
        }
    }

    #[test]
    fn ascending_sweep_visits_sorted_deduped() {
        let stats = SemanticStats::default();
        let t: MapTables<u64> = StripedTables::new(8, PointLocks::default());
        let mut visited = Vec::new();
        t.for_stripes_ascending([5usize, 1, 5, 7, 1, 0], &stats, |i, _| visited.push(i));
        assert_eq!(visited, vec![0, 1, 5, 7]);
    }

    #[test]
    fn striped_key_lock_and_doom_round_trip() {
        let stats = SemanticStats::default();
        let t: MapTables<u32> = StripedTables::new(4, PointLocks::default());
        let me = owner();
        let victim = owner();
        t.with_stripe_for(&9, &stats, |s| s.take_key_lock(9, victim.clone(), &stats));
        let doomed = t.with_stripe_for(&9, &stats, |s| {
            s.doom_update(UpdateEffect::KeyWrite, &9, me.id(), &stats)
        });
        assert_eq!(doomed, 1);
        assert!(victim.is_doomed());
    }

    #[test]
    fn global_stripe_entries_are_counted() {
        let stats = SemanticStats::default();
        let t: MapTables<u32> = StripedTables::new(4, PointLocks::default());
        let me = owner();
        t.with_global(&stats, |g| g.take_size_lock(me.clone(), &stats));
        t.with_global(&stats, |g| g.release_owner(me.id(), &stats));
        assert_eq!(stats.global_stripe_entries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn local_table_shards_by_id_and_never_resurrects() {
        let t: LocalTable<Vec<u32>> = LocalTable::new(4);
        assert!(!t.contains(3));
        t.with(3, |l| l.push(1));
        assert!(t.contains(3));
        assert_eq!(t.len(), 1);
        // Non-creating update on a missing id is a no-op.
        assert_eq!(t.update(99, |l| l.push(5)), None);
        assert_eq!(t.len(), 1);
        let taken = t.remove(3);
        assert_eq!(taken, Some(vec![1]));
        // An undo racing the removal must not bring the entry back.
        assert_eq!(t.update(3, |l| l.push(2)), None);
        assert!(!t.contains(3));
        assert_eq!(t.len(), 0);
    }
}
