//! Snapshot read entry points: never-aborting reads for every collection.
//!
//! Each `snapshot_*` method runs its underlying observation inside
//! [`stm::atomic_read`] — a **snapshot transaction** that samples the
//! global clock once, pins that epoch, and serves every TVar read from the
//! newest version-chain entry at or below the snapshot version. By
//! construction the attempt keeps no read-set, performs no commit-time
//! validation, acquires no semantic locks (the kernel's snapshot skip
//! reports every lock as already held, so the stripe round trip never
//! happens), and can never abort: a committing writer pushes the outgoing
//! value onto the var's chain instead of invalidating the reader.
//!
//! Serializability comes from the chain, not from locking: all values a
//! snapshot observes are the committed state at one clock instant, so the
//! whole read serializes at its snapshot version (`docs/PROTOCOL.md`,
//! "Snapshot reads"). The price is freshness — a snapshot may return state
//! that was current when it began, not when it returned — which is exactly
//! the paper's size/iteration pain point inverted: a whole-collection
//! observation that conflicts with *nothing*.
//!
//! Two escape hatches, both counted (`snapshot_fallbacks` in
//! [`stm::StatsSnapshot`]), never silent: a chain truncated past the
//! snapshot (the reader outlived the bounded per-var history), and a class
//! whose committed state has no per-version history — boosted backends and
//! the eager map (`SemanticClass::snapshot_capable` returns `false`). In
//! both cases the body re-runs as an ordinary validated transaction and
//! returns the same answer, just with the usual conflict rules.
//!
//! This file deliberately contains only the thin `atomic_read` wrappers:
//! txlint TX013 rejects any call to a lock-acquiring kernel entry point in
//! a file carrying the snapshot-mode marker below, so the zero-lock
//! property of the snapshot path is lexically enforced, not just dynamic.

// txlint: snapshot-mode

use crate::backend::{MapBackend, QueueBackend, SortedMapBackend};
use crate::eager_map::EagerTransactionalMap;
use crate::interval_map::TransactionalIntervalMap;
use crate::map::TransactionalMap;
use crate::multiset::TransactionalMultiset;
use crate::priority_queue::TransactionalPriorityQueue;
use crate::queue::{Channel, TransactionalQueue};
use crate::set::{TransactionalSet, TransactionalSortedSet};
use crate::sorted_map::TransactionalSortedMap;
use std::hash::Hash;
use stm::atomic_read;

impl<K, V, B> TransactionalMap<K, V, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    /// [`Self::get`] at one consistent snapshot version, with no
    /// transaction argument: never blocks on, conflicts with, or dooms any
    /// writer.
    ///
    /// ```
    /// use stm::atomic;
    /// use txcollections::TransactionalMap;
    ///
    /// let map: TransactionalMap<u32, &str> = TransactionalMap::new();
    /// atomic(|tx| map.put_discard(tx, 1, "one"));
    /// assert_eq!(map.snapshot_get(&1), Some("one"));
    /// ```
    pub fn snapshot_get(&self, key: &K) -> Option<V> {
        atomic_read(|tx| self.get(tx, key))
    }

    /// [`Self::contains_key`] at one consistent snapshot version.
    pub fn snapshot_contains_key(&self, key: &K) -> bool {
        atomic_read(|tx| self.contains_key(tx, key))
    }

    /// [`Self::size`] at one consistent snapshot version — the paper's
    /// high-conflict whole-collection observation, made conflict-free.
    pub fn snapshot_size(&self) -> usize {
        atomic_read(|tx| self.size(tx))
    }

    /// [`Self::is_empty`] at one consistent snapshot version.
    pub fn snapshot_is_empty(&self) -> bool {
        atomic_read(|tx| self.is_empty(tx))
    }
}

impl<K, V, B> TransactionalSortedMap<K, V, B>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: SortedMapBackend<K, V>,
{
    /// [`Self::get`] at one consistent snapshot version.
    pub fn snapshot_get(&self, key: &K) -> Option<V> {
        atomic_read(|tx| self.get(tx, key))
    }

    /// [`Self::size`] at one consistent snapshot version.
    pub fn snapshot_size(&self) -> usize {
        atomic_read(|tx| self.size(tx))
    }

    /// [`Self::first_key`] at one consistent snapshot version.
    pub fn snapshot_first_key(&self) -> Option<K> {
        atomic_read(|tx| self.first_key(tx))
    }

    /// [`Self::last_key`] at one consistent snapshot version.
    pub fn snapshot_last_key(&self) -> Option<K> {
        atomic_read(|tx| self.last_key(tx))
    }

    /// [`Self::entries`] at one consistent snapshot version: the ordered
    /// iteration of paper §5.2 with zero endpoint or key locks.
    pub fn snapshot_entries(&self) -> Vec<(K, V)> {
        atomic_read(|tx| self.entries(tx))
    }
}

impl<T, B> TransactionalQueue<T, B>
where
    T: Clone + Send + Sync + 'static,
    B: QueueBackend<T>,
{
    /// [`Channel::peek`] at one consistent snapshot version.
    pub fn snapshot_peek(&self) -> Option<T> {
        atomic_read(|tx| self.peek(tx))
    }

    /// Queue length at one consistent snapshot version (the committed
    /// length — a snapshot transaction has no buffered additions).
    pub fn snapshot_len(&self) -> usize {
        atomic_read(|tx| self.committed_len(tx))
    }

    /// Emptiness at one consistent snapshot version.
    pub fn snapshot_is_empty(&self) -> bool {
        self.snapshot_len() == 0
    }
}

impl<K, B> TransactionalSet<K, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    B: MapBackend<K, ()>,
{
    /// [`Self::contains`] at one consistent snapshot version.
    pub fn snapshot_contains(&self, value: &K) -> bool {
        atomic_read(|tx| self.contains(tx, value))
    }

    /// [`Self::size`] at one consistent snapshot version.
    pub fn snapshot_size(&self) -> usize {
        atomic_read(|tx| self.size(tx))
    }
}

impl<K, B> TransactionalSortedSet<K, B>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    B: SortedMapBackend<K, ()>,
{
    /// [`Self::contains`] at one consistent snapshot version.
    pub fn snapshot_contains(&self, value: &K) -> bool {
        atomic_read(|tx| self.contains(tx, value))
    }

    /// [`Self::size`] at one consistent snapshot version.
    pub fn snapshot_size(&self) -> usize {
        atomic_read(|tx| self.size(tx))
    }

    /// [`Self::first`] at one consistent snapshot version.
    pub fn snapshot_first(&self) -> Option<K> {
        atomic_read(|tx| self.first(tx))
    }

    /// [`Self::last`] at one consistent snapshot version.
    pub fn snapshot_last(&self) -> Option<K> {
        atomic_read(|tx| self.last(tx))
    }
}

impl<T, B> TransactionalMultiset<T, B>
where
    T: Clone + Eq + Hash + Send + Sync + 'static,
    B: MapBackend<T, u64>,
{
    /// [`Self::count`] at one consistent snapshot version.
    pub fn snapshot_count(&self, value: &T) -> u64 {
        atomic_read(|tx| self.count(tx, value))
    }

    /// [`Self::contains`] at one consistent snapshot version.
    pub fn snapshot_contains(&self, value: &T) -> bool {
        atomic_read(|tx| self.contains(tx, value))
    }

    /// [`Self::len`] at one consistent snapshot version.
    pub fn snapshot_len(&self) -> usize {
        atomic_read(|tx| self.len(tx))
    }
}

impl<T, B> TransactionalPriorityQueue<T, B>
where
    T: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    B: SortedMapBackend<T, u64>,
{
    /// [`Self::peek_min`] at one consistent snapshot version.
    pub fn snapshot_peek_min(&self) -> Option<T> {
        atomic_read(|tx| self.peek_min(tx))
    }

    /// [`Self::len`] at one consistent snapshot version.
    pub fn snapshot_len(&self) -> usize {
        atomic_read(|tx| self.len(tx))
    }
}

impl<K, V> TransactionalIntervalMap<K, V>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// [`Self::stab`] at one consistent snapshot version: no range lock is
    /// recorded, so the query commutes with every concurrent update.
    pub fn snapshot_stab(&self, point: &K) -> Vec<(u64, V)> {
        atomic_read(|tx| self.stab(tx, point))
    }

    /// [`Self::overlapping`] at one consistent snapshot version.
    pub fn snapshot_overlapping(&self, lo: K, hi: K) -> Vec<(u64, V)> {
        atomic_read(|tx| self.overlapping(tx, lo.clone(), hi.clone()))
    }

    /// [`Self::len`] at one consistent snapshot version.
    pub fn snapshot_len(&self) -> usize {
        atomic_read(|tx| self.len(tx))
    }
}

impl<K, V, B> EagerTransactionalMap<K, V, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    /// [`Self::get`] through the snapshot entry point. The eager map is
    /// never snapshot-capable (in-place writes land before commit), so this
    /// always takes the counted fallback and re-runs validated — provided
    /// for API uniformity, priced honestly in `snapshot_fallbacks`.
    pub fn snapshot_get(&self, key: &K) -> Option<V> {
        atomic_read(|tx| self.get(tx, key))
    }
}
