//! `TransactionalQueue` — a transactional work queue with **selectively
//! reduced isolation** (paper §3.3).
//!
//! Inspired by Delaunay-mesh work queues: workers take work items and may add
//! new ones while processing. Plain open nesting (add/remove immediately)
//! breaks atomicity — "if transactions abort, the new work added to the
//! queue is invalid, but may be impossible to recover since another
//! transaction may have dequeued it". `TransactionalQueue` fixes both
//! directions:
//!
//! * **put** buffers the item locally (`addBuffer`) and publishes it in the
//!   commit handler, so work produced by an aborted transaction is never
//!   seen by anyone;
//! * **poll/take** removes the item from the shared queue *immediately*
//!   (open-nested — this is the isolation reduction: other transactions can
//!   observe the queue shrink before we commit) and records it in
//!   `removeBuffer`; the abort handler returns it to the queue, so work is
//!   never lost.
//!
//! Because ordering is deliberately not guaranteed ("to improve concurrency,
//! we do not maintain strict ordering on the queue"), the only semantic
//! conflict is emptiness: a transaction that observed an empty queue
//! (null `peek`/`poll`) holds the **empty lock** and is doomed by any commit
//! or abort that makes the queue non-empty (Tables 7–8).
//!
//! The queue has no per-key locks, so its whole semantic table (the empty
//! and full locker sets) *is* a global stripe — one counted mutex — while
//! the per-transaction `locals` buffers are sharded by transaction id like
//! every other collection.

// txlint: semantic-tables
// txlint: fast-path
use crate::backend::QueueBackend;
use crate::conflict_graph::{edge, op, ConflictGraph, Overlap};
use crate::kernel::{CachedPoint, SemanticClass, SemanticCore};
use crate::locks::{
    doom_others, mode_compatible, DoomCtx, GlobalStripe, ObsMode, Owner, SemanticStats,
    UpdateEffect, DEFAULT_STRIPES,
};
use std::collections::HashSet;
use std::marker::PhantomData;
use stm::trace::{self, LockKind};
use stm::{Txn, TxnMode};
use txstruct::TxVecDeque;

// txlint: conflict-graph
/// Paper Tables 7–8 as a declared conflict graph. The queue is
/// deliberately unordered (§3.3) — element observations take no key locks,
/// so the graph has only the whole-collection emptiness and fullness
/// modes: `poll`/`peek` returning null observe `Empty` and are doomed by
/// zero-crossing commits; `offer` returning false (and a blocking `put` on
/// a full queue) observes `Full` and is doomed by consuming commits.
pub static QUEUE_CONFLICT_GRAPH: ConflictGraph<'static> = ConflictGraph {
    class: "queue",
    ops: &[
        op(
            "put",
            &[ObsMode::Full],
            &[UpdateEffect::SizeChange, UpdateEffect::ZeroCross],
        ),
        op(
            "offer",
            &[ObsMode::Full],
            &[UpdateEffect::SizeChange, UpdateEffect::ZeroCross],
        ),
        op(
            "poll",
            &[ObsMode::Empty],
            &[
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
                UpdateEffect::Consume,
            ],
        ),
        op("peek", &[ObsMode::Empty], &[]),
    ],
    edges: &[
        // Emptiness observers vs zero-crossing commits (Table 7): a put
        // making the queue non-empty (or a poll abort restoring items)
        // dooms null-observers; non-crossing size changes commute.
        edge(
            "poll",
            "put",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "poll",
            "offer",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "poll",
            "poll",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "peek",
            "put",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "peek",
            "offer",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "peek",
            "poll",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        // Fullness observers vs consuming commits (Table 8): freed
        // capacity dooms `offer() -> false` / a blocked `put`.
        edge(
            "put",
            "poll",
            ObsMode::Full,
            UpdateEffect::Consume,
            Overlap::Always,
        ),
        edge(
            "offer",
            "poll",
            ObsMode::Full,
            UpdateEffect::Consume,
            Overlap::Always,
        ),
    ],
};

/// The `Channel` interface from `util.concurrent` (paper §3.3): the minimal
/// enqueue/dequeue surface of a concurrent work queue, deliberately omitting
/// random access.
pub trait Channel<T> {
    /// Enqueue an item (published at commit).
    fn put(&self, tx: &mut Txn, item: T);
    /// Enqueue an item; `true` on success (always, for unbounded queues).
    fn offer(&self, tx: &mut Txn, item: T) -> bool {
        self.put(tx, item);
        true
    }
    /// Dequeue an item, or `None` if the queue is empty (taking the empty
    /// lock in that case).
    fn poll(&self, tx: &mut Txn) -> Option<T>;
    /// Observe the head without removing it, or `None` if empty (taking the
    /// empty lock in that case).
    fn peek(&self, tx: &mut Txn) -> Option<T>;
}

/// Per-transaction local queue state (paper Table 9 plus the frame-abort
/// `returnBuffer` needed for closed-nesting compensation).
struct QueueLocal<T> {
    /// Items this transaction enqueued; published by the commit handler.
    add_buffer: Vec<T>,
    /// Items this transaction dequeued from the shared queue; returned by
    /// the abort handler.
    remove_buffer: Vec<T>,
    /// Items dequeued inside a closed-nested frame that later aborted: they
    /// must go back to the shared queue whether the top-level transaction
    /// commits or aborts.
    return_buffer: Vec<T>,
}

impl<T> Default for QueueLocal<T> {
    fn default() -> Self {
        QueueLocal {
            add_buffer: Vec::new(),
            remove_buffer: Vec::new(),
            return_buffer: Vec::new(),
        }
    }
}

struct QueueTables {
    empty_lockers: HashSet<Owner>,
    /// Holders observed the queue full (bounded queues only) — doomed when
    /// a commit permanently consumes items.
    full_lockers: HashSet<Owner>,
}

/// The variant half of the queue class (kernel [`SemanticClass`]): the
/// wrapped backend, the optional capacity bound, and the queue's whole
/// semantic table — the empty/full locker sets behind one counted mutex
/// (the queue has no per-key locks, so its table *is* a global stripe).
struct QueueClass<T, B> {
    backend: B,
    /// `None` = unbounded (the paper's queue); `Some(n)` = bounded Channel
    /// with full-lock semantics symmetric to the empty lock.
    capacity: Option<usize>,
    tables: GlobalStripe<QueueTables>,
    _item: PhantomData<fn() -> T>,
}

impl<T, B> SemanticClass for QueueClass<T, B>
where
    T: Clone + Send + Sync + 'static,
    B: QueueBackend<T>,
{
    type Local = QueueLocal<T>;
    type Undo = ();

    fn name(&self) -> &'static str {
        "queue"
    }

    fn conflict_graph(&self) -> Option<&'static ConflictGraph<'static>> {
        Some(&QUEUE_CONFLICT_GRAPH)
    }

    /// See `MapClass::snapshot_capable`: versioned (TVar) backends serve
    /// snapshot reads, non-transactional ones fall back.
    fn snapshot_capable(&self) -> bool {
        <B as crate::backend::QueueReadOps<T>>::TRANSACTIONAL_READS
    }

    /// Commit handler: publish the add/return buffers, then doom emptiness
    /// observers on a zero-crossing publish and fullness observers on a
    /// permanent consume (Tables 7-8).
    fn apply(&self, local: QueueLocal<T>, htx: &mut Txn, id: u64, stats: &SemanticStats) {
        let made_nonempty = !local.add_buffer.is_empty() || !local.return_buffer.is_empty();
        // Items permanently consumed: fullness observations are invalidated.
        let consumed = !local.remove_buffer.is_empty();
        // Items un-consumed by aborted frames go back near the front; new
        // work appends at the back.
        for item in local.return_buffer {
            self.backend.push_front(htx, item);
        }
        for item in local.add_buffer {
            self.backend.push_back(htx, item);
        }
        self.tables.with(stats, |tables| {
            // Route the dooms through the Tables 7-8 oracle: an emptiness
            // observation is invalidated exactly by a zero-crossing publish,
            // a fullness observation exactly by permanent consumption.
            if made_nonempty && !mode_compatible(ObsMode::Empty, UpdateEffect::ZeroCross, false) {
                let ctx = DoomCtx {
                    stats,
                    obs: ObsMode::Empty,
                    effect: UpdateEffect::ZeroCross,
                    key_hash: 0,
                };
                let doomed = doom_others(&mut tables.empty_lockers, id, &ctx);
                stats.bump(&stats.empty_conflicts, doomed);
            }
            if consumed && !mode_compatible(ObsMode::Full, UpdateEffect::Consume, false) {
                let ctx = DoomCtx {
                    stats,
                    obs: ObsMode::Full,
                    effect: UpdateEffect::Consume,
                    key_hash: 0,
                };
                let doomed = doom_others(&mut tables.full_lockers, id, &ctx);
                stats.bump(&stats.empty_conflicts, doomed);
            }
            release_queue_locks(tables, id, stats);
        });
    }

    /// Abort handler (compensation): return everything we dequeued, drop
    /// everything we only buffered, and release our empty/full locks.
    fn release(&self, local: QueueLocal<T>, htx: &mut Txn, id: u64, stats: &SemanticStats) {
        let restored = !local.remove_buffer.is_empty() || !local.return_buffer.is_empty();
        for item in local.remove_buffer.into_iter().rev() {
            self.backend.push_front(htx, item);
        }
        for item in local.return_buffer {
            self.backend.push_front(htx, item);
        }
        self.tables.with(stats, |tables| {
            if restored {
                // The queue may have gone from empty back to non-empty:
                // emptiness observers are no longer serializable.
                let ctx = DoomCtx {
                    stats,
                    obs: ObsMode::Empty,
                    effect: UpdateEffect::ZeroCross,
                    key_hash: 0,
                };
                let doomed = doom_others(&mut tables.empty_lockers, id, &ctx);
                stats.bump(&stats.empty_conflicts, doomed);
            }
            release_queue_locks(tables, id, stats);
        });
    }
}

/// Drop transaction `id`'s empty/full locks, emitting the trace release
/// events with per-kind counts (the queue's bespoke table does not go
/// through [`PointLocks`](crate::locks::PointLocks), so it emits its own).
fn release_queue_locks(tables: &mut QueueTables, id: u64, stats: &SemanticStats) {
    let empties = tables.empty_lockers.len();
    let fulls = tables.full_lockers.len();
    tables.empty_lockers.retain(|o| o.id() != id);
    tables.full_lockers.retain(|o| o.id() != id);
    let sym = stats.class_sym();
    trace::sem_lock_released(
        id,
        sym,
        LockKind::Empty,
        (empties - tables.empty_lockers.len()) as u64,
    );
    trace::sem_lock_released(
        id,
        sym,
        LockKind::Full,
        (fulls - tables.full_lockers.len()) as u64,
    );
}

/// A transactional work queue wrapping any [`QueueBackend`]; see the module
/// docs for the isolation contract.
pub struct TransactionalQueue<T, B = TxVecDeque<T>>
where
    T: Clone + Send + Sync + 'static,
    B: QueueBackend<T>,
{
    core: SemanticCore<QueueClass<T, B>>,
}

impl<T, B> Clone for TransactionalQueue<T, B>
where
    T: Clone + Send + Sync + 'static,
    B: QueueBackend<T>,
{
    fn clone(&self) -> Self {
        TransactionalQueue {
            core: self.core.clone(),
        }
    }
}

impl<T> TransactionalQueue<T, TxVecDeque<T>>
where
    T: Clone + Send + Sync + 'static,
{
    /// Create a `TransactionalQueue` over a fresh [`TxVecDeque`].
    pub fn new() -> Self {
        Self::wrap(TxVecDeque::new())
    }

    /// Create a **bounded** queue: `offer` fails (taking the full lock) when
    /// `capacity` items are visible, and `put` blocks (aborts and retries).
    /// The full lock mirrors the empty lock of Tables 7–8: a transaction
    /// that observed fullness is doomed by any commit that permanently
    /// consumes items.
    pub fn bounded(capacity: usize) -> Self {
        Self::wrap_bounded(TxVecDeque::new(), capacity)
    }
}

impl<T> Default for TransactionalQueue<T, TxVecDeque<T>>
where
    T: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<T, B> TransactionalQueue<T, B>
where
    T: Clone + Send + Sync + 'static,
    B: QueueBackend<T>,
{
    fn build(backend: B, capacity: Option<usize>) -> Self {
        TransactionalQueue {
            core: SemanticCore::new(
                QueueClass {
                    backend,
                    capacity,
                    tables: GlobalStripe::new(QueueTables {
                        empty_lockers: HashSet::new(),
                        full_lockers: HashSet::new(),
                    }),
                    _item: PhantomData,
                },
                DEFAULT_STRIPES,
            ),
        }
    }

    /// Wrap an existing queue implementation (unbounded).
    pub fn wrap(backend: B) -> Self {
        Self::build(backend, None)
    }

    /// Wrap an existing queue implementation with a capacity bound.
    pub fn wrap_bounded(backend: B, capacity: usize) -> Self {
        Self::build(backend, Some(capacity))
    }

    /// Semantic-conflict counters (only `empty_conflicts` is used here).
    pub fn semantic_stats(&self) -> &SemanticStats {
        self.core.stats()
    }

    fn assert_usable(tx: &Txn) {
        assert!(
            tx.mode() == TxnMode::Speculative,
            "TransactionalQueue operations cannot run inside commit/abort handlers"
        );
    }

    /// First-touch registration, discharged by the kernel (probe, then the
    /// paired handlers, then the locals entry — in exactly that order).
    fn ensure_registered(&self, tx: &mut Txn) {
        self.core.ensure_registered(tx);
    }

    fn with_local<R>(&self, tx: &Txn, f: impl FnOnce(&mut QueueLocal<T>) -> R) -> R {
        self.core.with_local(tx, f)
    }

    fn take_empty_lock(&self, tx: &mut Txn) {
        if self.core.point_lock_cached(tx, CachedPoint::Empty) {
            return;
        }
        let owner = tx.handle().clone();
        let stats = self.core.stats();
        stats.bump(&stats.lock_acquisitions, 1);
        self.core.class().tables.with(stats, |t| {
            trace::sem_lock_acquired(owner.id(), stats.class_sym(), LockKind::Empty, 0);
            t.empty_lockers.insert(owner);
        });
        self.core.note_point_lock(tx, CachedPoint::Empty);
    }

    fn take_full_lock(&self, tx: &mut Txn) {
        if self.core.point_lock_cached(tx, CachedPoint::Full) {
            return;
        }
        let owner = tx.handle().clone();
        let stats = self.core.stats();
        stats.bump(&stats.lock_acquisitions, 1);
        self.core.class().tables.with(stats, |t| {
            trace::sem_lock_acquired(owner.id(), stats.class_sym(), LockKind::Full, 0);
            t.full_lockers.insert(owner);
        });
        self.core.note_point_lock(tx, CachedPoint::Full);
    }

    /// The number of items this transaction would see: committed queue plus
    /// everything it will publish at commit.
    fn visible_len(&self, tx: &mut Txn) -> usize {
        let backend = &self.core.class().backend;
        let committed = tx.open_read(|otx| backend.len(otx));
        committed
            + self
                .core
                .try_local(tx, |l| l.add_buffer.len() + l.return_buffer.len())
                .unwrap_or(0)
    }

    /// Dequeue with blocking-take semantics in the threaded runtime: if the
    /// queue is empty, abort and retry the whole transaction (the STM analog
    /// of `Channel.take` blocking). Use [`Channel::poll`] for non-blocking.
    pub fn take_or_retry(&self, tx: &mut Txn) -> T {
        match self.poll(tx) {
            Some(item) => item,
            None => stm::abort_and_retry(),
        }
    }

    /// Number of committed items currently in the underlying queue
    /// (diagnostic; takes no semantic locks).
    pub fn committed_len(&self, tx: &mut Txn) -> usize {
        let backend = &self.core.class().backend;
        tx.open_read(|otx| backend.len(otx))
    }
}

impl<T, B> Channel<T> for TransactionalQueue<T, B>
where
    T: Clone + Send + Sync + 'static,
    B: QueueBackend<T>,
{
    fn put(&self, tx: &mut Txn, item: T) {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        if let Some(cap) = self.core.class().capacity {
            if self.visible_len(tx) >= cap {
                // Blocking semantics in the threaded runtime: observe
                // fullness (full lock) and retry the whole transaction; a
                // consuming commit dooms/wakes us.
                self.take_full_lock(tx);
                stm::abort_and_retry();
            }
        }
        let id = tx.handle().id();
        let index = self.with_local(tx, |l| {
            l.add_buffer.push(item);
            l.add_buffer.len() - 1
        });
        let core = self.core.clone();
        tx.on_local_undo(move || {
            core.update_local(id, |l| {
                l.add_buffer.truncate(index);
            });
        });
    }

    fn offer(&self, tx: &mut Txn, item: T) -> bool {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        if let Some(cap) = self.core.class().capacity {
            if self.visible_len(tx) >= cap {
                // Observed fullness: semantic read of the "full" property.
                self.take_full_lock(tx);
                return false;
            }
        }
        self.put(tx, item);
        true
    }

    fn poll(&self, tx: &mut Txn) -> Option<T> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        let id = tx.handle().id();
        // Reduced isolation: remove from the shared queue immediately. A
        // mutating open — this one cannot flatten (`open_read` is read-only
        // by contract) and stays a real open-nested child.
        let backend = &self.core.class().backend;
        if let Some(item) = tx.open(|otx| backend.pop_front(otx)) {
            let index = self.with_local(tx, |l| {
                l.remove_buffer.push(item.clone());
                l.remove_buffer.len() - 1
            });
            // If an enclosing closed frame aborts, the item must still reach
            // the queue again: move it to the unconditional return buffer.
            let core = self.core.clone();
            tx.on_local_undo(move || {
                core.update_local(id, |l| {
                    if index < l.remove_buffer.len() {
                        let it = l.remove_buffer.remove(index);
                        l.return_buffer.push(it);
                    }
                });
            });
            return Some(item);
        }
        // Shared queue empty: consume our own pending additions.
        let own = self
            .core
            .try_local(tx, |l| {
                if l.add_buffer.is_empty() {
                    None
                } else {
                    Some(l.add_buffer.remove(0))
                }
            })
            .flatten();
        if let Some(item) = own {
            let core = self.core.clone();
            let item2 = item.clone();
            tx.on_local_undo(move || {
                core.update_local(id, |l| {
                    l.add_buffer.insert(0, item2.clone());
                });
            });
            return Some(item);
        }
        // Observed emptiness: semantic read of the "empty" property.
        self.take_empty_lock(tx);
        None
    }

    fn peek(&self, tx: &mut Txn) -> Option<T> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        let backend = &self.core.class().backend;
        if let Some(item) = tx.open_read(|otx| backend.peek_front(otx)) {
            // A non-null peek never conflicts (Table 7: the queue is
            // unordered, so observing *an* element commutes with puts and
            // with takes of other elements).
            return Some(item);
        }
        let own = self
            .core
            .try_local(tx, |l| l.add_buffer.first().cloned())
            .flatten();
        if own.is_some() {
            return own;
        }
        self.take_empty_lock(tx);
        None
    }
}
