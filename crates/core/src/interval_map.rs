//! `TransactionalIntervalMap` — span-keyed entries with semantic
//! concurrency control and **synthesized** locks.
//!
//! Every entry covers a half-open key interval `[lo, hi)`; queries are
//! stabbing (`stab`) and intersection (`overlapping`) reads. The class
//! exercises the span-valued slice of the lock protocol: readers take
//! **range locks** on the interval they observe, and a committing writer
//! dooms them with interval-vs-interval intersection
//! ([`doom_update_span`](crate::locks)) — point-stab dooming would be
//! unsound here, because a reader's range can sit strictly inside a
//! written span without containing either endpoint. The committed store
//! is a persistent-by-cloning [`IntervalTree`] behind a `TVar`: the
//! commit handler clones, mutates, and republishes it, so speculative
//! readers always see a consistent snapshot. No hand-written mode table
//! exists for this class: lock modes come from
//! [`INTERVAL_MAP_CONFLICT_GRAPH`], validated against the dispatch matrix
//! at construction.

// txlint: semantic-tables
// txlint: fast-path
use crate::conflict_graph::{edge, op, ConflictGraph, Overlap};
use crate::interval::IntervalTree;
use crate::kernel::{CachedPoint, SemanticClass, SemanticCore};
use crate::locks::{
    bounds_overlap, key_hash64, ObsMode, RangeIndexKind, SemanticStats, SortedGlobal, SortedTables,
    StripedTables, UpdateEffect, DEFAULT_STRIPES,
};
use std::collections::HashMap;
use std::hash::Hash;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stm::{TVar, Txn, TxnMode};

// txlint: conflict-graph
/// The interval map's declared conflict graph. `insert` is blind (the new
/// id cannot have been observed); `remove` observes the doomed interval's
/// span (`Range`) before buffering the removal, so it is both a range
/// observer and a key writer and needs the reflexive self-edge; `stab`
/// and `overlapping` observe the queried span; `len` and `is_empty` are
/// the whole-collection cardinality observers.
pub static INTERVAL_MAP_CONFLICT_GRAPH: ConflictGraph<'static> = ConflictGraph {
    class: "interval_map",
    ops: &[
        op(
            "insert",
            &[],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
            ],
        ),
        op(
            "remove",
            &[ObsMode::Range],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
            ],
        ),
        op("stab", &[ObsMode::Range], &[]),
        op("overlapping", &[ObsMode::Range], &[]),
        op("len", &[ObsMode::Size], &[]),
        op("is_empty_primitive", &[ObsMode::Empty], &[]),
    ],
    edges: &[
        // Span observers vs writes of intersecting spans; disjoint spans
        // commute.
        edge(
            "remove",
            "insert",
            ObsMode::Range,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "remove",
            ObsMode::Range,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "stab",
            "insert",
            ObsMode::Range,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "stab",
            "remove",
            ObsMode::Range,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "overlapping",
            "insert",
            ObsMode::Range,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "overlapping",
            "remove",
            ObsMode::Range,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        // Cardinality observers vs entry-count changes.
        edge(
            "len",
            "insert",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "len",
            "remove",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        // Emptiness primitive vs zero-crossings.
        edge(
            "is_empty_primitive",
            "insert",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "is_empty_primitive",
            "remove",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
    ],
};

fn above_lower<K: Ord>(k: &K, lower: &Bound<K>) -> bool {
    match lower {
        Bound::Unbounded => true,
        Bound::Included(l) => k >= l,
        Bound::Excluded(l) => k > l,
    }
}

fn below_upper<K: Ord>(k: &K, upper: &Bound<K>) -> bool {
    match upper {
        Bound::Unbounded => true,
        Bound::Included(u) => k <= u,
        Bound::Excluded(u) => k < u,
    }
}

/// Hash of a span for trace attribution: the lower bound's key when there
/// is one (spans in this class always have one).
fn span_hash<K: Hash>(lower: &Bound<K>) -> u64 {
    match lower {
        Bound::Included(k) | Bound::Excluded(k) => key_hash64(k),
        Bound::Unbounded => 0,
    }
}

/// Per-transaction local state: buffered insertions and removals plus the
/// buffered change to the entry count. A removal of an id this
/// transaction itself inserted simply drops the buffered insertion.
pub(crate) struct IntervalMapLocal<K, V> {
    pub adds: Vec<(u64, Bound<K>, Bound<K>, V)>,
    pub removes: HashMap<u64, (Bound<K>, Bound<K>)>,
    pub delta: isize,
}

impl<K, V> Default for IntervalMapLocal<K, V> {
    fn default() -> Self {
        IntervalMapLocal {
            adds: Vec::new(),
            removes: HashMap::new(),
            delta: 0,
        }
    }
}

/// The variant half of the interval-map class: the committed tree behind
/// a `TVar`, the id allocator, and the lock tables (only the global
/// stripe is used — every observation here is span- or
/// collection-valued, so nothing is attributable to a key shard).
pub(crate) struct IntervalMapClass<K, V>
where
    K: Clone + Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    pub(crate) store: TVar<Arc<IntervalTree<K, (u64, V)>>>,
    pub(crate) next_id: AtomicU64,
    pub(crate) tables: SortedTables<K>,
}

impl<K, V> SemanticClass for IntervalMapClass<K, V>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    type Local = IntervalMapLocal<K, V>;
    type Undo = ();

    fn name(&self) -> &'static str {
        "interval_map"
    }

    fn conflict_graph(&self) -> Option<&'static ConflictGraph<'static>> {
        Some(&INTERVAL_MAP_CONFLICT_GRAPH)
    }

    /// Commit handler: clone the committed tree, apply buffered removals
    /// and insertions, republish it, then doom span observers
    /// interval-vs-interval and the size/empty observers — all under the
    /// global stripe (this class holds no key-stripe locks).
    fn apply(&self, local: IntervalMapLocal<K, V>, htx: &mut Txn, id: u64, stats: &SemanticStats) {
        let snapshot = self.store.read(htx);
        let len_before = snapshot.len();
        let mut changed_spans: Vec<(Bound<K>, Bound<K>)> = Vec::new();
        let mut len_after = len_before;
        if !local.removes.is_empty() || !local.adds.is_empty() {
            let mut tree = (*snapshot).clone();
            if !local.removes.is_empty() {
                for (lo, hi, _) in tree.remove_by(|(iid, _)| local.removes.contains_key(iid)) {
                    changed_spans.push((lo, hi));
                }
            }
            for (iid, lo, hi, v) in local.adds {
                tree.insert(lo.clone(), hi.clone(), (iid, v));
                changed_spans.push((lo, hi));
            }
            len_after = tree.len();
            if !changed_spans.is_empty() {
                self.store.write(htx, Arc::new(tree));
            }
        }
        self.tables.with_global(stats, |g| {
            for (lo, hi) in &changed_spans {
                g.sorted
                    .doom_update_span(UpdateEffect::KeyWrite, lo, hi, span_hash(lo), id, stats);
            }
            if len_after != len_before {
                let (by_size, _) = g.points.doom_update(UpdateEffect::SizeChange, id, stats);
                stats.bump(&stats.size_conflicts, by_size);
                if (len_before == 0) != (len_after == 0) {
                    let (_, by_empty) = g.points.doom_update(UpdateEffect::ZeroCross, id, stats);
                    stats.bump(&stats.empty_conflicts, by_empty);
                }
            }
            g.points.release_owner(id, stats);
            g.sorted.release_owner(id, stats);
        });
    }

    /// Abort handler: writes were only buffered — pure lock release in the
    /// global stripe.
    fn release(
        &self,
        _local: IntervalMapLocal<K, V>,
        _htx: &mut Txn,
        id: u64,
        stats: &SemanticStats,
    ) {
        self.tables.with_global(stats, |g| {
            g.points.release_owner(id, stats);
            g.sorted.release_owner(id, stats);
        });
    }
}

/// A transactional interval map: values keyed by half-open key spans
/// `[lo, hi)`, with stabbing and intersection queries under synthesized
/// semantic locks.
///
/// ```
/// use stm::atomic;
/// use txcollections::TransactionalIntervalMap;
///
/// let m: TransactionalIntervalMap<u32, &'static str> = TransactionalIntervalMap::new();
/// atomic(|tx| {
///     let a = m.insert(tx, 0, 10, "low");
///     m.insert(tx, 5, 15, "mid");
///     let hits = m.stab(tx, &7);
///     assert_eq!(hits.len(), 2);
///     assert!(m.remove(tx, a));
///     assert_eq!(m.stab(tx, &2).len(), 0);
/// });
/// ```
pub struct TransactionalIntervalMap<K, V>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    core: SemanticCore<IntervalMapClass<K, V>>,
}

impl<K, V> Clone for TransactionalIntervalMap<K, V>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn clone(&self) -> Self {
        TransactionalIntervalMap {
            core: self.core.clone(),
        }
    }
}

impl<K, V> Default for TransactionalIntervalMap<K, V>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> TransactionalIntervalMap<K, V>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create an empty interval map.
    pub fn new() -> Self {
        Self::with_stripes(DEFAULT_STRIPES)
    }

    /// Create with an explicit stripe count. The key stripes are unused by
    /// this class (every lock is span- or collection-valued and lives in
    /// the global stripe), so striping cannot change observable behavior;
    /// the knob exists for constructor parity with the other classes.
    pub fn with_stripes(nstripes: usize) -> Self {
        TransactionalIntervalMap {
            core: SemanticCore::new(
                IntervalMapClass {
                    store: TVar::new(Arc::new(IntervalTree::new())),
                    next_id: AtomicU64::new(1),
                    tables: StripedTables::new(
                        nstripes,
                        SortedGlobal::with_kind(RangeIndexKind::FlatScan),
                    ),
                },
                nstripes,
            ),
        }
    }

    /// Semantic-conflict counters for this instance.
    pub fn semantic_stats(&self) -> &SemanticStats {
        self.core.stats()
    }

    /// Stripe count of the (unused-by-this-class) key-lock table.
    pub fn stripe_count(&self) -> usize {
        self.core.class().tables.stripe_count()
    }

    fn assert_usable(tx: &Txn) {
        assert!(
            tx.mode() == TxnMode::Speculative,
            "TransactionalIntervalMap operations cannot run inside commit/abort handlers"
        );
    }

    fn with_local<R>(&self, tx: &Txn, f: impl FnOnce(&mut IntervalMapLocal<K, V>) -> R) -> R {
        self.core.with_local(tx, f)
    }

    fn take_range_lock(&self, tx: &mut Txn, lower: Bound<K>, upper: Bound<K>) {
        if tx.in_snapshot() {
            // Snapshot skip: range locks are not representable in the
            // kernel's point/key cache, so the gate lives here. A snapshot
            // read is isolated by the store's version chain; taking the
            // lock would leak it (snapshot transactions run no handlers).
            return;
        }
        let owner = tx.handle().clone();
        let stats = self.core.stats();
        self.core.class().tables.with_global(stats, |g| {
            g.sorted.add_range_lock(owner, lower, upper, stats);
        });
    }

    /// Committed-tree snapshot via one flattened read (validated against
    /// the store's version stamp, no child transaction).
    fn snapshot(&self, tx: &mut Txn) -> Arc<IntervalTree<K, (u64, V)>> {
        let store = self.core.class().store.clone();
        tx.open_read(move |otx| store.read(otx))
    }

    /// Insert a value covering the half-open span `[lo, hi)`; returns the
    /// entry's id. Blind and buffered: a freshly allocated id cannot have
    /// been observed by anyone, so no semantic lock is taken and
    /// concurrent inserts always commute.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` (the span would be empty).
    pub fn insert(&self, tx: &mut Txn, lo: K, hi: K, value: V) -> u64 {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        assert!(
            lo < hi,
            "TransactionalIntervalMap spans must satisfy lo < hi"
        );
        let id = self.core.class().next_id.fetch_add(1, Ordering::Relaxed);
        let (lower, upper) = (Bound::Included(lo), Bound::Excluded(hi));
        self.with_local(tx, |l| {
            l.adds.push((id, lower, upper, value));
            l.delta += 1;
        });
        let txid = tx.handle().id();
        let core = self.core.clone();
        tx.on_local_undo(move || {
            core.update_local(txid, |l| {
                l.adds.retain(|(aid, _, _, _)| *aid != id);
                l.delta -= 1;
            });
        });
        id
    }

    /// Remove an entry by id; `true` if it was visible. Removing a
    /// committed entry observes its span (range lock), so it conflicts
    /// with any committing write of an intersecting span — including
    /// another `remove` of the same entry (the reflexive edge).
    pub fn remove(&self, tx: &mut Txn, id: u64) -> bool {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        // Already removed by us, or our own buffered insert (which we can
        // just drop — a txn-local entry needs no lock). Non-creating probe:
        // a transaction with no locals entry cannot have a local hit.
        let local_hit = self
            .core
            .try_local(tx, |l| {
                if l.removes.contains_key(&id) {
                    Some(None)
                } else if let Some(idx) = l.adds.iter().position(|(aid, _, _, _)| *aid == id) {
                    let entry = l.adds.remove(idx);
                    l.delta -= 1;
                    Some(Some(entry))
                } else {
                    None
                }
            })
            .flatten();
        match local_hit {
            Some(None) => return false,
            Some(Some(entry)) => {
                let txid = tx.handle().id();
                let core = self.core.clone();
                tx.on_local_undo(move || {
                    core.update_local(txid, |l| {
                        l.adds.push(entry);
                        l.delta += 1;
                    });
                });
                return true;
            }
            None => {}
        }
        // Committed entry: find its span, lock it, then verify it is still
        // present under the lock (a commit between probe and lock could
        // have removed it; once the lock is held, any such commit dooms
        // us instead).
        let span = self.find_span(tx, id);
        let Some((lower, upper)) = span else {
            return false;
        };
        self.take_range_lock(tx, lower.clone(), upper.clone());
        if self.find_span(tx, id).is_none() {
            return false;
        }
        let txid = tx.handle().id();
        self.with_local(tx, |l| {
            l.removes.insert(id, (lower, upper));
            l.delta -= 1;
        });
        let core = self.core.clone();
        tx.on_local_undo(move || {
            core.update_local(txid, |l| {
                if l.removes.remove(&id).is_some() {
                    l.delta += 1;
                }
            });
        });
        true
    }

    /// The committed span of entry `id`, if present: one full-tree visit
    /// to map the app-level id to its node, then a span lookup.
    fn find_span(&self, tx: &mut Txn, id: u64) -> Option<(Bound<K>, Bound<K>)> {
        let tree = self.snapshot(tx);
        let mut node_id = None;
        tree.intersecting(
            &Bound::Unbounded,
            &Bound::Unbounded,
            &mut |nid, (iid, _)| {
                if *iid == id {
                    node_id = Some(nid);
                }
            },
        );
        let nid = node_id?;
        tree.entries()
            .into_iter()
            .find(|(eid, _, _)| *eid == nid)
            .map(|(_, lo, hi)| (lo, hi))
    }

    /// All visible entries whose span contains `point`, as `(id, value)`
    /// pairs (range lock on the degenerate span `[point, point]`).
    pub fn stab(&self, tx: &mut Txn, point: &K) -> Vec<(u64, V)> {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        self.take_range_lock(
            tx,
            Bound::Included(point.clone()),
            Bound::Included(point.clone()),
        );
        let tree = self.snapshot(tx);
        let mut out: Vec<(u64, V)> = Vec::new();
        tree.stab(point, &mut |_, (iid, v)| out.push((*iid, v.clone())));
        self.merge_local(tx, out, |lo, hi| {
            above_lower(point, lo) && below_upper(point, hi)
        })
    }

    /// All visible entries whose span intersects `[lo, hi)`, as
    /// `(id, value)` pairs (range lock on the queried span).
    pub fn overlapping(&self, tx: &mut Txn, lo: K, hi: K) -> Vec<(u64, V)> {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        let (lower, upper) = (Bound::Included(lo), Bound::Excluded(hi));
        self.take_range_lock(tx, lower.clone(), upper.clone());
        let tree = self.snapshot(tx);
        let mut out: Vec<(u64, V)> = Vec::new();
        tree.intersecting(&lower, &upper, &mut |_, (iid, v)| {
            out.push((*iid, v.clone()))
        });
        self.merge_local(tx, out, |l, u| bounds_overlap(&lower, &upper, l, u))
    }

    /// Filter buffered removals out of a committed result set and append
    /// the buffered insertions the span predicate admits.
    fn merge_local(
        &self,
        tx: &Txn,
        committed: Vec<(u64, V)>,
        admit: impl Fn(&Bound<K>, &Bound<K>) -> bool,
    ) -> Vec<(u64, V)> {
        let mut out = committed;
        let merged = self.core.try_local(tx, |l| {
            let committed = std::mem::take(&mut out);
            let mut out: Vec<(u64, V)> = committed
                .into_iter()
                .filter(|(id, _)| !l.removes.contains_key(id))
                .collect();
            for (id, lo, hi, v) in &l.adds {
                if admit(lo, hi) {
                    out.push((*id, v.clone()));
                }
            }
            out
        });
        merged.unwrap_or(out)
    }

    /// Number of visible entries (size lock).
    pub fn len(&self, tx: &mut Txn) -> usize {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        if !self.core.point_lock_cached(tx, CachedPoint::Size) {
            let owner = tx.handle().clone();
            let stats = self.core.stats();
            self.core
                .class()
                .tables
                .with_global(stats, |g| g.points.take_size_lock(owner, stats));
            self.core.note_point_lock(tx, CachedPoint::Size);
        }
        let committed = self.snapshot(tx).len() as isize;
        let delta = self.core.try_local(tx, |l| l.delta).unwrap_or(0);
        (committed + delta).max(0) as usize
    }

    /// `len() == 0` via the size lock.
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.len(tx) == 0
    }

    /// Emptiness as a primitive with its own zero-crossing lock (§5.1):
    /// conflicts only when the entry count moves to or from zero.
    pub fn is_empty_primitive(&self, tx: &mut Txn) -> bool {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        if !self.core.point_lock_cached(tx, CachedPoint::Empty) {
            let owner = tx.handle().clone();
            let stats = self.core.stats();
            self.core
                .class()
                .tables
                .with_global(stats, |g| g.points.take_empty_lock(owner, stats));
            self.core.note_point_lock(tx, CachedPoint::Empty);
        }
        let committed = self.snapshot(tx).len() as isize;
        let delta = self.core.try_local(tx, |l| l.delta).unwrap_or(0);
        (committed + delta) <= 0
    }
}
