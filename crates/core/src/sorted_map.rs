//! `TransactionalSortedMap` — semantic concurrency control for the
//! `SortedMap` abstract data type (paper §3.2).
//!
//! Extends the `Map` protocol with the sorted-specific abstract properties
//! of Tables 4–6: **key ranges** (ordered iteration and `subMap`/`headMap`/
//! `tailMap` views take growing range locks), and the **first/last
//! endpoints** (`firstKey`/`lastKey` take endpoint locks; a committing
//! `put`/`remove` that changes an endpoint dooms their holders).
//!
//! "It's important to note that ranges are more than just a series of keys"
//! (§3.2): inserting a new key *inside* a range another transaction has
//! iterated violates serializability even though no iterated key was
//! touched. The range lock covers the whole interval, so such inserts doom
//! the iterator's transaction at the writer's commit.
//!
//! Key locks live in the striped table (one stripe per key-hash shard);
//! the order-based tables — endpoint locks and range locks — live in the
//! **global stripe** together with the size/empty point locks, because a
//! range or endpoint observation concerns the whole ordered structure and
//! cannot be attributed to one key shard. A committing writer's handler
//! applies and dooms per key under the key's stripe (ascending order), then
//! enters the global stripe once for the range/endpoint/size dooms — so
//! order-based observers still see a totally ordered table.
//!
//! Range locks live, by default, in a flat scanned list — the paper's
//! complexity-vs-overhead call — or in an interval tree
//! ([`crate::RangeIndexKind::IntervalTree`], the alternative §3.2 mentions;
//! the `ablation_rangeindex` bench quantifies the crossover). Iterators read
//! the underlying tree *stepwise and live* (`next_entry_after` per step,
//! each in its own open-nested transaction), merging the thread-local store
//! buffer in key order.

// txlint: semantic-tables
// txlint: fast-path
use crate::backend::SortedMapBackend;
use crate::conflict_graph::{edge, op, ConflictGraph, Overlap};
use crate::kernel::{
    sweep_commit_footprint, sweep_release_footprint, CachedPoint, FootprintOp, SemanticClass,
    SemanticCore,
};
use crate::locks::{
    key_hash64, ObsMode, RangeIndexKind, SemanticStats, SortedGlobal, SortedTables, StripedTables,
    UpdateEffect, DEFAULT_STRIPES,
};
use crate::map::{BufWrite, MapLocal};
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::Bound;
use stm::{Txn, TxnMode};
use txstruct::TxTreeMap;

// txlint: conflict-graph
/// Paper Tables 4–5 as a declared conflict graph: the sorted map adds the
/// endpoint (`First`/`Last`) and `Range` observation modes plus the
/// endpoint-moving effects to the plain map's graph. Lock modes are
/// synthesized from this declaration and validated against the dispatch
/// matrix at core construction; txlint TX010 checks it lexically.
pub static SORTED_MAP_CONFLICT_GRAPH: ConflictGraph<'static> = ConflictGraph {
    class: "sorted_map",
    ops: &[
        op("get", &[ObsMode::Key], &[]),
        op(
            "put",
            &[ObsMode::Key],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
                UpdateEffect::FirstChange,
                UpdateEffect::LastChange,
            ],
        ),
        op(
            "remove",
            &[ObsMode::Key],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
                UpdateEffect::FirstChange,
                UpdateEffect::LastChange,
            ],
        ),
        op(
            "put_blind",
            &[],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
                UpdateEffect::FirstChange,
                UpdateEffect::LastChange,
            ],
        ),
        op("size", &[ObsMode::Size], &[]),
        op("is_empty_primitive", &[ObsMode::Empty], &[]),
        op("first_key", &[ObsMode::First, ObsMode::Key], &[]),
        op("last_key", &[ObsMode::Last, ObsMode::Key], &[]),
        op(
            "range_iter",
            &[ObsMode::Range, ObsMode::Key, ObsMode::Size],
            &[],
        ),
    ],
    edges: &[
        // Same-key writes doom key observers (Table 4 interior cells:
        // distinct keys commute).
        edge(
            "get",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "get",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "get",
            "put_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "put",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "put",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "put",
            "put_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "put_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "first_key",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "first_key",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "first_key",
            "put_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "last_key",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "last_key",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "last_key",
            "put_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "range_iter",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "range_iter",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "range_iter",
            "put_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        // Range observers are doomed by writes landing inside their
        // interval (Table 5).
        edge(
            "range_iter",
            "put",
            ObsMode::Range,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "range_iter",
            "remove",
            ObsMode::Range,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "range_iter",
            "put_blind",
            ObsMode::Range,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        // size() and exhausted iteration vs any size change.
        edge(
            "size",
            "put",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "size",
            "remove",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "size",
            "put_blind",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "range_iter",
            "put",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "range_iter",
            "remove",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "range_iter",
            "put_blind",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        // §5.1 emptiness primitive vs zero-crossings.
        edge(
            "is_empty_primitive",
            "put",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "is_empty_primitive",
            "remove",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "is_empty_primitive",
            "put_blind",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        // Endpoint observers vs endpoint-moving updates (Table 4).
        edge(
            "first_key",
            "put",
            ObsMode::First,
            UpdateEffect::FirstChange,
            Overlap::Always,
        ),
        edge(
            "first_key",
            "remove",
            ObsMode::First,
            UpdateEffect::FirstChange,
            Overlap::Always,
        ),
        edge(
            "first_key",
            "put_blind",
            ObsMode::First,
            UpdateEffect::FirstChange,
            Overlap::Always,
        ),
        edge(
            "last_key",
            "put",
            ObsMode::Last,
            UpdateEffect::LastChange,
            Overlap::Always,
        ),
        edge(
            "last_key",
            "remove",
            ObsMode::Last,
            UpdateEffect::LastChange,
            Overlap::Always,
        ),
        edge(
            "last_key",
            "put_blind",
            ObsMode::Last,
            UpdateEffect::LastChange,
            Overlap::Always,
        ),
    ],
};

/// The variant half of the sorted-map class (kernel [`SemanticClass`]): the
/// wrapped backend plus the striped key-lock table whose global stripe also
/// carries the order-based range/endpoint locks.
pub(crate) struct SortedClass<K, V, B> {
    pub(crate) backend: B,
    pub(crate) tables: SortedTables<K>,
    _value: PhantomData<fn() -> V>,
}

impl<K, V, B> SemanticClass for SortedClass<K, V, B>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: SortedMapBackend<K, V>,
{
    type Local = MapLocal<K, V>;
    type Undo = ();

    fn name(&self) -> &'static str {
        "sorted_map"
    }

    fn conflict_graph(&self) -> Option<&'static ConflictGraph<'static>> {
        Some(&SORTED_MAP_CONFLICT_GRAPH)
    }

    /// See `MapClass::snapshot_capable`: versioned (TVar) backends serve
    /// snapshot reads, non-transactional ones fall back.
    fn snapshot_capable(&self) -> bool {
        <B as crate::backend::MapReadOps<K, V>>::TRANSACTIONAL_READS
    }

    /// Commit handler: apply the store buffer and doom conflicting
    /// observers — per-key applies and key dooms under each key's stripe
    /// (ascending, the kernel's sweep), then the global stripe **last** for
    /// the range/endpoint/size dooms and the point-lock release.
    fn apply(&self, local: MapLocal<K, V>, htx: &mut Txn, id: u64, stats: &SemanticStats) {
        // The handler lane serializes every handler and every writing
        // open-nested commit, so these pre-apply endpoint/size reads are
        // stable without holding any table lock.
        let first_before = self.backend.first_entry(htx).map(|(k, _)| k);
        let last_before = self.backend.last_entry(htx).map(|(k, _)| k);
        let size_before = self.backend.len(htx) as isize;
        let mut size_after = size_before;

        // Phase 1 — key stripes, ascending (kernel sweep): apply each
        // buffered write and doom key-lock observers under the key's
        // stripe; release own key locks. Keys whose committed state
        // actually changed are collected for the global-stripe range scan
        // (phase 2).
        let mut changed_keys: Vec<&K> = Vec::new();
        sweep_commit_footprint(
            &self.tables,
            stats,
            local.store_buffer.iter(),
            local.key_locks.iter(),
            |shard, op| match op {
                FootprintOp::Apply(k, BufWrite::Put(v)) => {
                    let old = self.backend.insert(htx, k.clone(), v.clone());
                    if old.is_none() {
                        size_after += 1;
                    }
                    let doomed = shard.doom_update(UpdateEffect::KeyWrite, k, id, stats);
                    stats.bump(&stats.key_conflicts, doomed);
                    changed_keys.push(k);
                }
                FootprintOp::Apply(k, BufWrite::Remove) => {
                    let old = self.backend.remove(htx, k);
                    if old.is_some() {
                        size_after -= 1;
                        let doomed = shard.doom_update(UpdateEffect::KeyWrite, k, id, stats);
                        stats.bump(&stats.key_conflicts, doomed);
                        changed_keys.push(k);
                    }
                }
                FootprintOp::Release(k) => {
                    shard.release_keys(id, std::iter::once(k), stats);
                }
            },
        );

        // Phase 2 — global stripe, last: every apply above happens-before
        // this hold, so range/endpoint/size observers locking after this
        // scan read the fully applied post-commit state.
        let first_after = self.backend.first_entry(htx).map(|(k, _)| k);
        let last_after = self.backend.last_entry(htx).map(|(k, _)| k);
        self.tables.with_global(stats, |g| {
            for k in &changed_keys {
                let (by_range, _, _) =
                    g.sorted
                        .doom_update(UpdateEffect::KeyWrite, Some(k), key_hash64(k), id, stats);
                stats.bump(&stats.range_conflicts, by_range);
            }
            if first_before != first_after {
                let (_, by_first, _) =
                    g.sorted
                        .doom_update(UpdateEffect::FirstChange, None, 0, id, stats);
                stats.bump(&stats.first_conflicts, by_first);
            }
            if last_before != last_after {
                let (_, _, by_last) =
                    g.sorted
                        .doom_update(UpdateEffect::LastChange, None, 0, id, stats);
                stats.bump(&stats.last_conflicts, by_last);
            }
            if size_after != size_before {
                let (by_size, _) = g.points.doom_update(UpdateEffect::SizeChange, id, stats);
                stats.bump(&stats.size_conflicts, by_size);
                if (size_before == 0) != (size_after == 0) {
                    let (_, by_empty) = g.points.doom_update(UpdateEffect::ZeroCross, id, stats);
                    stats.bump(&stats.empty_conflicts, by_empty);
                }
            }
            g.points.release_owner(id, stats);
            g.sorted.release_owner(id, stats);
        });
    }

    /// Abort handler (compensating transaction): release key locks stripe
    /// by stripe ascending (kernel sweep), then every point/range/endpoint
    /// lock in the global stripe, last.
    fn release(&self, local: MapLocal<K, V>, _htx: &mut Txn, id: u64, stats: &SemanticStats) {
        sweep_release_footprint(
            &self.tables,
            stats,
            local.key_locks.iter(),
            |shard, keys| shard.release_keys(id, keys.iter().copied(), stats),
        );
        self.tables.with_global(stats, |g| {
            g.points.release_owner(id, stats);
            g.sorted.release_owner(id, stats);
        });
    }
}

/// A transactional wrapper making any [`SortedMapBackend`] safe and scalable
/// to use from long-running transactions, including ordered iteration and
/// range views.
pub struct TransactionalSortedMap<K, V, B = TxTreeMap<K, V>>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: SortedMapBackend<K, V>,
{
    core: SemanticCore<SortedClass<K, V, B>>,
}

impl<K, V, B> Clone for TransactionalSortedMap<K, V, B>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: SortedMapBackend<K, V>,
{
    fn clone(&self) -> Self {
        TransactionalSortedMap {
            core: self.core.clone(),
        }
    }
}

fn below_upper<K: Ord>(k: &K, upper: &Bound<K>) -> bool {
    match upper {
        Bound::Unbounded => true,
        Bound::Included(u) => k <= u,
        Bound::Excluded(u) => k < u,
    }
}

fn above_lower<K: Ord>(k: &K, lower: &Bound<K>) -> bool {
    match lower {
        Bound::Unbounded => true,
        Bound::Included(l) => k >= l,
        Bound::Excluded(l) => k > l,
    }
}

impl<K, V> TransactionalSortedMap<K, V, TxTreeMap<K, V>>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create a `TransactionalSortedMap` over a fresh [`TxTreeMap`].
    pub fn new() -> Self {
        Self::wrap(TxTreeMap::new())
    }

    /// Create over a fresh [`TxTreeMap`] with an explicit stripe count for
    /// the key-lock table (rounded up to a power of two; `1` recovers the
    /// single-table behavior).
    pub fn with_stripes(nstripes: usize) -> Self {
        Self::wrap_with_stripes(TxTreeMap::new(), nstripes)
    }
}

impl<K, V> Default for TransactionalSortedMap<K, V, TxTreeMap<K, V>>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, B> TransactionalSortedMap<K, V, B>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: SortedMapBackend<K, V>,
{
    /// Wrap an existing sorted map implementation ([`DEFAULT_STRIPES`] key
    /// stripes, flat-scan range index).
    pub fn wrap(backend: B) -> Self {
        Self::wrap_with_range_index(backend, RangeIndexKind::FlatScan)
    }

    /// Wrap with an explicit range-lock index (paper §3.2 discusses the
    /// flat-scan default vs an interval tree; see `RangeIndexKind`).
    pub fn wrap_with_range_index(backend: B, kind: RangeIndexKind) -> Self {
        Self::wrap_full(backend, kind, DEFAULT_STRIPES)
    }

    /// Wrap with an explicit key-stripe count (flat-scan range index).
    pub fn wrap_with_stripes(backend: B, nstripes: usize) -> Self {
        Self::wrap_full(backend, RangeIndexKind::FlatScan, nstripes)
    }

    /// Wrap with both knobs explicit.
    pub fn wrap_full(backend: B, kind: RangeIndexKind, nstripes: usize) -> Self {
        TransactionalSortedMap {
            core: SemanticCore::new(
                SortedClass {
                    backend,
                    tables: StripedTables::new(nstripes, SortedGlobal::with_kind(kind)),
                    _value: PhantomData,
                },
                nstripes,
            ),
        }
    }

    /// Semantic-conflict counters for this instance.
    pub fn semantic_stats(&self) -> &SemanticStats {
        self.core.stats()
    }

    /// Number of key stripes in this instance's semantic lock table.
    pub fn stripe_count(&self) -> usize {
        self.core.class().tables.stripe_count()
    }

    fn assert_usable(tx: &Txn) {
        assert!(
            tx.mode() == TxnMode::Speculative,
            "TransactionalSortedMap operations cannot run inside commit/abort handlers"
        );
    }

    /// First-touch registration and handler ordering are the kernel's
    /// obligation: [`SemanticCore::ensure_registered`] wires the handler
    /// pair (txlint TX008 forbids doing it here).
    fn ensure_registered(&self, tx: &mut Txn) {
        self.core.ensure_registered(tx);
    }

    fn with_local<R>(&self, tx: &Txn, f: impl FnOnce(&mut MapLocal<K, V>) -> R) -> R {
        self.core.with_local(tx, f)
    }

    fn take_key_lock(&self, tx: &mut Txn, key: &K) {
        if self.core.key_lock_cached(tx, key) {
            return;
        }
        let owner = tx.handle().clone();
        let class = self.core.class();
        let stats = self.core.stats();
        class.tables.with_stripe_for(key, stats, |s| {
            s.take_key_lock(key.clone(), owner, stats);
        });
        self.with_local(tx, |l| {
            l.key_locks.insert(key.clone());
        });
        self.core.note_key_lock(tx, key.clone());
    }

    fn buffered(&self, tx: &Txn, key: &K) -> Option<BufWrite<V>> {
        self.core
            .try_local(tx, |l| l.store_buffer.get(key).cloned())
            .flatten()
    }

    /// Buffered entry plus whether it is blind (its presence relative to the
    /// committed state is unknown). Blindness must be preserved by further
    /// writes to the key, or the size delta silently loses the unresolved
    /// contribution.
    fn buffered_with_blind(&self, tx: &Txn, key: &K) -> (Option<BufWrite<V>>, bool) {
        self.core
            .try_local(tx, |l| {
                (l.store_buffer.get(key).cloned(), l.blind.contains(key))
            })
            .unwrap_or((None, false))
    }

    fn buffer_write(
        &self,
        tx: &mut Txn,
        key: K,
        write: BufWrite<V>,
        delta_change: isize,
        blind: bool,
    ) {
        let id = tx.handle().id();
        let (prev_entry, was_blind) = self.with_local(tx, |l| {
            let prev = l.store_buffer.insert(key.clone(), write);
            let was_blind = if blind {
                !l.blind.insert(key.clone())
            } else {
                l.blind.remove(&key)
            };
            l.delta += delta_change;
            (prev, was_blind)
        });
        let core = self.core.clone();
        let key2 = key.clone();
        tx.on_local_undo(move || {
            core.update_local(id, |l| {
                match prev_entry {
                    Some(w) => {
                        l.store_buffer.insert(key2.clone(), w);
                    }
                    None => {
                        l.store_buffer.remove(&key2);
                    }
                }
                if blind && !was_blind {
                    l.blind.remove(&key2);
                }
                l.delta -= delta_change;
            });
        });
    }

    // ------------------------------------------------------------------
    // Map-level operations (same protocol as TransactionalMap)
    // ------------------------------------------------------------------

    /// Look up a key (key lock + open-nested read).
    pub fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        match self.buffered(tx, key) {
            Some(BufWrite::Put(v)) => return Some(v),
            Some(BufWrite::Remove) => return None,
            None => {}
        }
        self.take_key_lock(tx, key);
        let backend = &self.core.class().backend;
        tx.open_read(|otx| backend.get(otx, key))
    }

    /// Whether a key is present (key lock).
    pub fn contains_key(&self, tx: &mut Txn, key: &K) -> bool {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        match self.buffered(tx, key) {
            Some(BufWrite::Put(_)) => return true,
            Some(BufWrite::Remove) => return false,
            None => {}
        }
        self.take_key_lock(tx, key);
        let backend = &self.core.class().backend;
        tx.open_read(|otx| backend.contains_key(otx, key))
    }

    /// Insert or replace; returns the previous value (reads the key).
    pub fn put(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        let (buffered, was_blind) = self.buffered_with_blind(tx, &key);
        let old = match buffered {
            Some(BufWrite::Put(v)) => Some(v),
            Some(BufWrite::Remove) => None,
            None => {
                self.take_key_lock(tx, &key);
                let backend = &self.core.class().backend;
                tx.open_read(|otx| backend.get(otx, &key))
            }
        };
        // A blind entry's contribution to the size is still unresolved:
        // keep it blind and leave the delta deferred.
        let delta_change = if was_blind {
            0
        } else {
            1 - isize::from(old.is_some())
        };
        self.buffer_write(tx, key, BufWrite::Put(value), delta_change, was_blind);
        old
    }

    /// Insert or replace without reading the old value (§5.1 extension).
    pub fn put_discard(&self, tx: &mut Txn, key: K, value: V) {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        match self.buffered_with_blind(tx, &key) {
            (Some(BufWrite::Put(_)), blind) => {
                self.buffer_write(tx, key, BufWrite::Put(value), 0, blind);
            }
            (Some(BufWrite::Remove), true) => {
                self.buffer_write(tx, key, BufWrite::Put(value), 0, true);
            }
            (Some(BufWrite::Remove), false) => {
                self.buffer_write(tx, key, BufWrite::Put(value), 1, false);
            }
            (None, _) => {
                self.buffer_write(tx, key, BufWrite::Put(value), 0, true);
            }
        }
    }

    /// Remove a key; returns the previous value (reads the key).
    pub fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        let (buffered, was_blind) = self.buffered_with_blind(tx, key);
        let old = match buffered {
            Some(BufWrite::Put(v)) => Some(v),
            Some(BufWrite::Remove) => None,
            None => {
                self.take_key_lock(tx, key);
                let backend = &self.core.class().backend;
                tx.open_read(|otx| backend.get(otx, key))
            }
        };
        let delta_change = if was_blind {
            0
        } else {
            -isize::from(old.is_some())
        };
        self.buffer_write(tx, key.clone(), BufWrite::Remove, delta_change, was_blind);
        old
    }

    /// Remove without reading the old value (blind; see
    /// [`Self::put_discard`]).
    pub fn remove_discard(&self, tx: &mut Txn, key: &K) {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        match self.buffered_with_blind(tx, key) {
            (Some(BufWrite::Put(_)), true) => {
                self.buffer_write(tx, key.clone(), BufWrite::Remove, 0, true);
            }
            (Some(BufWrite::Put(_)), false) => {
                self.buffer_write(tx, key.clone(), BufWrite::Remove, -1, false);
            }
            (Some(BufWrite::Remove), _) => {}
            (None, _) => {
                self.buffer_write(tx, key.clone(), BufWrite::Remove, 0, true);
            }
        }
    }

    fn resolve_blind(&self, tx: &mut Txn) {
        let blind: Vec<K> = self
            .core
            .try_local(tx, |l| l.blind.iter().cloned().collect())
            .unwrap_or_default();
        for k in blind {
            self.take_key_lock(tx, &k);
            let backend = &self.core.class().backend;
            let committed_present = tx.open_read(|otx| backend.contains_key(otx, &k));
            self.with_local(tx, |l| {
                if l.blind.remove(&k) {
                    let buffered_present = matches!(l.store_buffer.get(&k), Some(BufWrite::Put(_)));
                    l.delta += buffered_present as isize - committed_present as isize;
                }
            });
        }
    }

    /// Number of entries (size lock, global stripe).
    pub fn size(&self, tx: &mut Txn) -> usize {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        self.resolve_blind(tx);
        if !self.core.point_lock_cached(tx, CachedPoint::Size) {
            let owner = tx.handle().clone();
            let stats = self.core.stats();
            self.core
                .class()
                .tables
                .with_global(stats, |g| g.points.take_size_lock(owner, stats));
            self.core.note_point_lock(tx, CachedPoint::Size);
        }
        let backend = &self.core.class().backend;
        let committed = tx.open_read(|otx| backend.len(otx));
        let delta = self.core.try_local(tx, |l| l.delta).unwrap_or(0);
        (committed as isize + delta).max(0) as usize
    }

    /// `size() == 0` (size lock); see `TransactionalMap::is_empty_primitive`
    /// for the rationale of the separate zero-crossing variant.
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.size(tx) == 0
    }

    /// Emptiness with its own zero-crossing lock (§5.1).
    pub fn is_empty_primitive(&self, tx: &mut Txn) -> bool {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        self.resolve_blind(tx);
        if !self.core.point_lock_cached(tx, CachedPoint::Empty) {
            let owner = tx.handle().clone();
            let stats = self.core.stats();
            self.core
                .class()
                .tables
                .with_global(stats, |g| g.points.take_empty_lock(owner, stats));
            self.core.note_point_lock(tx, CachedPoint::Empty);
        }
        let backend = &self.core.class().backend;
        let committed = tx.open_read(|otx| backend.len(otx));
        let delta = self.core.try_local(tx, |l| l.delta).unwrap_or(0);
        (committed as isize + delta) <= 0
    }

    // ------------------------------------------------------------------
    // Sorted operations
    // ------------------------------------------------------------------

    /// Committed next entry after `from`, skipping keys the buffer removes,
    /// staying under `upper`. Each step is one open-nested descent.
    fn committed_next(&self, tx: &mut Txn, from: &Bound<K>, upper: &Bound<K>) -> Option<(K, V)> {
        let backend = &self.core.class().backend;
        let mut cur = match from {
            Bound::Unbounded => tx.open_read(|otx| backend.first_entry(otx)),
            Bound::Included(k) => tx.open_read(|otx| backend.ceiling_entry(otx, k)),
            Bound::Excluded(k) => tx.open_read(|otx| backend.next_entry_after(otx, k)),
        };
        while let Some((k, v)) = cur {
            if !below_upper(&k, upper) {
                return None;
            }
            match self.buffered(tx, &k) {
                Some(BufWrite::Remove) => {
                    cur = tx.open_read(|otx| backend.next_entry_after(otx, &k));
                }
                _ => return Some((k, v)),
            }
        }
        None
    }

    /// Smallest buffered `Put` with key in `(from, upper]`.
    fn buffered_next(&self, tx: &Txn, from: &Bound<K>, upper: &Bound<K>) -> Option<(K, V)> {
        self.core
            .try_local(tx, |l| {
                l.store_buffer
                    .iter()
                    .filter_map(|(k, w)| match w {
                        BufWrite::Put(v) if above_lower(k, from) && below_upper(k, upper) => {
                            Some((k.clone(), v.clone()))
                        }
                        _ => None,
                    })
                    .min_by(|a, b| a.0.cmp(&b.0))
            })
            .flatten()
    }

    /// Largest committed entry at or below `upper`, skipping keys the buffer
    /// removes, staying above `lower` (the mirror of [`Self::committed_next`]).
    fn committed_prev(&self, tx: &mut Txn, upper: &Bound<K>, lower: &Bound<K>) -> Option<(K, V)> {
        let backend = &self.core.class().backend;
        let mut cur = match upper {
            Bound::Unbounded => tx.open_read(|otx| backend.last_entry(otx)),
            Bound::Included(k) => tx.open_read(|otx| backend.floor_entry(otx, k)),
            Bound::Excluded(k) => tx.open_read(|otx| backend.prev_entry_before(otx, k)),
        };
        while let Some((k, v)) = cur {
            if !above_lower(&k, lower) {
                return None;
            }
            match self.buffered(tx, &k) {
                Some(BufWrite::Remove) => {
                    cur = tx.open_read(|otx| backend.prev_entry_before(otx, &k));
                }
                _ => return Some((k, v)),
            }
        }
        None
    }

    /// The smallest visible entry in the given range.
    ///
    /// Protocol (probe → lock → verify): a first unlocked probe finds the
    /// candidate; the range lock `[lower, candidate]` (plus the first lock
    /// when `lower` is unbounded, Table 5) is taken; then the committed
    /// state is **re-read under the lock** and the verified value returned.
    /// If the verify disagrees, the world changed between probe and lock and
    /// the query restarts — the returned observation is therefore always
    /// covered by a lock that predates it (lock-then-read soundness).
    pub fn first_in_range(&self, tx: &mut Txn, lower: Bound<K>, upper: Bound<K>) -> Option<(K, V)> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        if matches!(lower, Bound::Unbounded) && !self.core.point_lock_cached(tx, CachedPoint::First)
        {
            let owner = tx.handle().clone();
            let stats = self.core.stats();
            self.core
                .class()
                .tables
                .with_global(stats, |g| g.sorted.take_first_lock(owner, stats));
            self.core.note_point_lock(tx, CachedPoint::First);
        }
        for _attempt in 0..64 {
            let committed = self.committed_next(tx, &lower, &upper);
            let buffered = self.buffered_next(tx, &lower, &upper);
            let candidate = match (&committed, &buffered) {
                (None, None) => None,
                (Some((ck, _)), None) => Some(ck.clone()),
                (None, Some((bk, _))) => Some(bk.clone()),
                (Some((ck, _)), Some((bk, _))) => {
                    Some(if bk <= ck { bk.clone() } else { ck.clone() })
                }
            };
            // Lock the observed prefix (or the whole empty range).
            let lock_upper = match &candidate {
                Some(k) => Bound::Included(k.clone()),
                None => upper.clone(),
            };
            // Snapshot skip: the observed prefix is already stable (served
            // from the version chains), and a snapshot transaction runs no
            // release sweep, so a range lock taken here would leak.
            if !tx.in_snapshot() {
                let owner = tx.handle().clone();
                let lo = lower.clone();
                let up = lock_upper.clone();
                let stats = self.core.stats();
                self.core.class().tables.with_global(stats, |g| {
                    g.sorted.add_range_lock(owner, lo, up, stats);
                });
            }
            // Verify under the lock.
            let verify = self.committed_next(tx, &lower, &lock_upper);
            match (&candidate, verify) {
                (None, None) => return None,
                (Some(k), verify) => {
                    let committed_now = match verify {
                        Some((vk, vv)) if vk == *k => Some(vv),
                        Some(_) => continue, // a smaller committed key appeared
                        None => None,
                    };
                    // Buffer override for the candidate key.
                    let value = match self.buffered(tx, k) {
                        Some(BufWrite::Put(v)) => Some(v),
                        Some(BufWrite::Remove) => None,
                        None => committed_now,
                    };
                    match value {
                        Some(v) => {
                            self.take_key_lock(tx, k);
                            return Some((k.clone(), v));
                        }
                        // Candidate vanished between probe and verify.
                        None => continue,
                    }
                }
                (None, Some(_)) => continue, // something appeared in the range
            }
        }
        // Pathological contention: give up the attempt and retry the whole
        // transaction (the §5.1 livelock hazard, resolved by back-off).
        stm::abort_and_retry()
    }

    /// Largest buffered `Put` with key in `[lower, upper]` bounds.
    fn buffered_prev(&self, tx: &Txn, upper: &Bound<K>, lower: &Bound<K>) -> Option<(K, V)> {
        self.core
            .try_local(tx, |l| {
                l.store_buffer
                    .iter()
                    .filter_map(|(k, w)| match w {
                        BufWrite::Put(v) if above_lower(k, lower) && below_upper(k, upper) => {
                            Some((k.clone(), v.clone()))
                        }
                        _ => None,
                    })
                    .max_by(|a, b| a.0.cmp(&b.0))
            })
            .flatten()
    }

    /// The largest visible entry in the given range — the mirror of
    /// [`Self::first_in_range`], with the same probe → lock → verify
    /// protocol (the last lock when `upper` is unbounded, a range lock
    /// `[candidate, upper]` otherwise).
    pub fn last_in_range(&self, tx: &mut Txn, lower: Bound<K>, upper: Bound<K>) -> Option<(K, V)> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        if matches!(upper, Bound::Unbounded) && !self.core.point_lock_cached(tx, CachedPoint::Last)
        {
            let owner = tx.handle().clone();
            let stats = self.core.stats();
            self.core
                .class()
                .tables
                .with_global(stats, |g| g.sorted.take_last_lock(owner, stats));
            self.core.note_point_lock(tx, CachedPoint::Last);
        }
        for _attempt in 0..64 {
            let committed = self.committed_prev(tx, &upper, &lower);
            let buffered = self.buffered_prev(tx, &upper, &lower);
            let candidate = match (&committed, &buffered) {
                (None, None) => None,
                (Some((ck, _)), None) => Some(ck.clone()),
                (None, Some((bk, _))) => Some(bk.clone()),
                (Some((ck, _)), Some((bk, _))) => {
                    Some(if bk >= ck { bk.clone() } else { ck.clone() })
                }
            };
            let lock_lower = match &candidate {
                Some(k) => Bound::Included(k.clone()),
                None => lower.clone(),
            };
            // Snapshot skip: see `first_in_range`.
            if !tx.in_snapshot() {
                let owner = tx.handle().clone();
                let lo = lock_lower.clone();
                let up = upper.clone();
                let stats = self.core.stats();
                self.core.class().tables.with_global(stats, |g| {
                    g.sorted.add_range_lock(owner, lo, up, stats);
                });
            }
            let verify = self.committed_prev(tx, &upper, &lock_lower);
            match (&candidate, verify) {
                (None, None) => return None,
                (Some(k), verify) => {
                    let committed_now = match verify {
                        Some((vk, vv)) if vk == *k => Some(vv),
                        Some(_) => continue, // a larger committed key appeared
                        None => None,
                    };
                    let value = match self.buffered(tx, k) {
                        Some(BufWrite::Put(v)) => Some(v),
                        Some(BufWrite::Remove) => None,
                        None => committed_now,
                    };
                    match value {
                        Some(v) => {
                            self.take_key_lock(tx, k);
                            return Some((k.clone(), v));
                        }
                        None => continue,
                    }
                }
                (None, Some(_)) => continue,
            }
        }
        stm::abort_and_retry()
    }

    /// Smallest key (first lock + key lock on the result, Table 5).
    pub fn first_key(&self, tx: &mut Txn) -> Option<K> {
        self.first_in_range(tx, Bound::Unbounded, Bound::Unbounded)
            .map(|(k, _)| k)
    }

    // NavigableMap-style queries (the JDK6 `NavigableMap` extension the
    // paper's §2.2 mentions). Each takes a range lock covering the gap it
    // observed plus a key lock on the answer.

    /// Smallest key `>= key`.
    pub fn ceiling_key(&self, tx: &mut Txn, key: &K) -> Option<K> {
        self.first_in_range(tx, Bound::Included(key.clone()), Bound::Unbounded)
            .map(|(k, _)| k)
    }

    /// Smallest key `> key`.
    pub fn higher_key(&self, tx: &mut Txn, key: &K) -> Option<K> {
        self.first_in_range(tx, Bound::Excluded(key.clone()), Bound::Unbounded)
            .map(|(k, _)| k)
    }

    /// Largest key `<= key`.
    pub fn floor_key(&self, tx: &mut Txn, key: &K) -> Option<K> {
        self.last_in_range(tx, Bound::Unbounded, Bound::Included(key.clone()))
            .map(|(k, _)| k)
    }

    /// Largest key `< key`.
    pub fn lower_key(&self, tx: &mut Txn, key: &K) -> Option<K> {
        self.last_in_range(tx, Bound::Unbounded, Bound::Excluded(key.clone()))
            .map(|(k, _)| k)
    }

    /// Largest key (last lock + key lock on the result, Table 5).
    pub fn last_key(&self, tx: &mut Txn) -> Option<K> {
        self.last_in_range(tx, Bound::Unbounded, Bound::Unbounded)
            .map(|(k, _)| k)
    }

    /// Begin ordered iteration over the whole map.
    pub fn iter(&self, tx: &mut Txn) -> TxSortedIter<K, V, B> {
        self.range_iter(tx, Bound::Unbounded, Bound::Unbounded)
    }

    /// Begin ordered iteration over `[lower, upper]` as given.
    ///
    /// The iterator owns a **growing range lock**: after returning key `k`
    /// its lock covers `[lower, k]`; on exhaustion it covers the full range,
    /// so inserts *anywhere* in the iterated interval doom this transaction
    /// at the writer's commit.
    pub fn range_iter(
        &self,
        tx: &mut Txn,
        lower: Bound<K>,
        upper: Bound<K>,
    ) -> TxSortedIter<K, V, B> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        TxSortedIter {
            map: self.clone(),
            lower,
            upper,
            last: None,
            range_id: None,
            done: false,
        }
    }

    /// All visible entries in key order (fully enumerates: on return, the
    /// whole range is locked).
    pub fn entries(&self, tx: &mut Txn) -> Vec<(K, V)> {
        let mut it = self.iter(tx);
        let mut out = Vec::new();
        while let Some(e) = it.next(tx) {
            out.push(e);
        }
        out
    }

    /// Visible entries within a range, in key order.
    pub fn range_entries(&self, tx: &mut Txn, lower: Bound<K>, upper: Bound<K>) -> Vec<(K, V)> {
        let mut it = self.range_iter(tx, lower, upper);
        let mut out = Vec::new();
        while let Some(e) = it.next(tx) {
            out.push(e);
        }
        out
    }

    /// A mutable range view (the `subMap` of the `SortedMap` interface).
    pub fn sub_map(&self, lower: Bound<K>, upper: Bound<K>) -> SortedMapView<K, V, B> {
        SortedMapView {
            map: self.clone(),
            lower,
            upper,
        }
    }

    /// View of all keys `< upper` (`headMap`).
    pub fn head_map(&self, upper: Bound<K>) -> SortedMapView<K, V, B> {
        self.sub_map(Bound::Unbounded, upper)
    }

    /// View of all keys `>= lower` (`tailMap`).
    pub fn tail_map(&self, lower: Bound<K>) -> SortedMapView<K, V, B> {
        self.sub_map(lower, Bound::Unbounded)
    }
}

/// Ordered transactional cursor; see [`TransactionalSortedMap::range_iter`].
pub struct TxSortedIter<K, V, B>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: SortedMapBackend<K, V>,
{
    map: TransactionalSortedMap<K, V, B>,
    lower: Bound<K>,
    upper: Bound<K>,
    last: Option<K>,
    range_id: Option<u64>,
    done: bool,
}

impl<K, V, B> TxSortedIter<K, V, B>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: SortedMapBackend<K, V>,
{
    fn extend_lock(&mut self, tx: &Txn, upper: Bound<K>) {
        // Snapshot skip: the growing range lock exists to doom writers that
        // insert into the iterated prefix, but a snapshot iteration is
        // isolated by the version chains and has no sweep to release the
        // lock — taking it would leak it. See `first_in_range`.
        if tx.in_snapshot() {
            return;
        }
        let class = self.map.core.class();
        let stats = self.map.core.stats();
        match self.range_id {
            Some(id) => class.tables.with_global(stats, |g| {
                g.sorted.extend_range_upper(id, upper);
            }),
            None => {
                let owner = tx.handle().clone();
                let lower = self.lower.clone();
                self.range_id = Some(class.tables.with_global(stats, |g| {
                    g.sorted.add_range_lock(owner, lower, upper, stats)
                }));
            }
        }
    }

    /// Produce the next entry in key order, or `None` once the range is
    /// exhausted (at which point the range lock spans the entire range).
    ///
    /// Each step is probe → lock-extension → verify: the candidate is found
    /// unlocked, the growing range lock is extended to cover it, and the
    /// committed state is re-read under the lock. The returned value always
    /// comes from the post-lock read, so a writer committing between probe
    /// and lock either shows up in the verify (the step restarts) or
    /// commits after the lock and dooms this transaction — never a stale
    /// observation.
    pub fn next(&mut self, tx: &mut Txn) -> Option<(K, V)> {
        if self.done {
            return None;
        }
        let from: Bound<K> = match &self.last {
            None => self.lower.clone(),
            Some(k) => Bound::Excluded(k.clone()),
        };
        for _attempt in 0..64 {
            let committed = self.map.committed_next(tx, &from, &self.upper);
            let buffered = self.map.buffered_next(tx, &from, &self.upper);
            let candidate: Option<K> = match (&committed, &buffered) {
                (None, None) => None,
                (Some((ck, _)), None) => Some(ck.clone()),
                (None, Some((bk, _))) => Some(bk.clone()),
                (Some((ck, _)), Some((bk, _))) => {
                    Some(if bk <= ck { bk.clone() } else { ck.clone() })
                }
            };
            match candidate {
                Some(k) => {
                    self.extend_lock(tx, Bound::Included(k.clone()));
                    // Verify under the lock: the next committed key within
                    // the freshly locked prefix.
                    let verify = self
                        .map
                        .committed_next(tx, &from, &Bound::Included(k.clone()));
                    let committed_now = match verify {
                        Some((vk, vv)) if vk == k => Some(vv),
                        // A smaller committed key slipped in before the
                        // lock: re-probe (the lock now covers it, so it is
                        // stable for the next round).
                        Some(_) => continue,
                        None => None,
                    };
                    let value = match self.map.buffered(tx, &k) {
                        Some(BufWrite::Put(v)) => Some(v),
                        Some(BufWrite::Remove) => None,
                        None => committed_now,
                    };
                    match value {
                        Some(v) => {
                            self.last = Some(k.clone());
                            return Some((k, v));
                        }
                        // The candidate vanished between probe and lock.
                        None => continue,
                    }
                }
                None => {
                    // Exhaustion: lock the whole remaining range, then make
                    // sure nothing appeared before the lock landed.
                    self.extend_lock(tx, self.upper.clone());
                    if matches!(self.upper, Bound::Unbounded)
                        && !self.map.core.point_lock_cached(tx, CachedPoint::Last)
                    {
                        // Observed that nothing follows: the last-key lock
                        // of Table 5's `hasNext == false` row.
                        let owner = tx.handle().clone();
                        let class = self.map.core.class();
                        let stats = self.map.core.stats();
                        class
                            .tables
                            .with_global(stats, |g| g.sorted.take_last_lock(owner, stats));
                        self.map.core.note_point_lock(tx, CachedPoint::Last);
                    }
                    let verify = self.map.committed_next(tx, &from, &self.upper);
                    if verify.is_some() {
                        continue;
                    }
                    self.done = true;
                    return None;
                }
            }
        }
        stm::abort_and_retry()
    }
}

/// A live range view over a [`TransactionalSortedMap`] (`subMap`/`headMap`/
/// `tailMap`). Mutations through the view are bounds-checked.
pub struct SortedMapView<K, V, B>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: SortedMapBackend<K, V>,
{
    map: TransactionalSortedMap<K, V, B>,
    lower: Bound<K>,
    upper: Bound<K>,
}

impl<K, V, B> SortedMapView<K, V, B>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: SortedMapBackend<K, V>,
{
    fn check_bounds(&self, key: &K) {
        assert!(
            above_lower(key, &self.lower) && below_upper(key, &self.upper),
            "key outside of view bounds"
        );
    }

    /// Look up a key within the view.
    pub fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
        self.check_bounds(key);
        self.map.get(tx, key)
    }

    /// Insert within the view.
    pub fn put(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
        self.check_bounds(&key);
        self.map.put(tx, key, value)
    }

    /// Remove within the view.
    pub fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
        self.check_bounds(key);
        self.map.remove(tx, key)
    }

    /// First entry of the view.
    pub fn first_entry(&self, tx: &mut Txn) -> Option<(K, V)> {
        self.map
            .first_in_range(tx, self.lower.clone(), self.upper.clone())
    }

    /// Last entry of the view.
    pub fn last_entry(&self, tx: &mut Txn) -> Option<(K, V)> {
        self.map
            .last_in_range(tx, self.lower.clone(), self.upper.clone())
    }

    /// Iterate the view in key order.
    pub fn iter(&self, tx: &mut Txn) -> TxSortedIter<K, V, B> {
        self.map
            .range_iter(tx, self.lower.clone(), self.upper.clone())
    }

    /// All visible entries of the view.
    pub fn entries(&self, tx: &mut Txn) -> Vec<(K, V)> {
        let mut it = self.iter(tx);
        let mut out = Vec::new();
        while let Some(e) = it.next(tx) {
            out.push(e);
        }
        out
    }
}
