//! Backend traits: the "underlying Map/Queue instance" slot of the paper's
//! collection classes, split into explicit **layers**.
//!
//! `TransactionalMap` et al. are *wrappers*: "transactional collection
//! classes wrap existing data structures, without the need for custom
//! implementations or knowledge of data structure internals" (paper
//! abstract). These traits are the wrapper's only view of the wrapped
//! structure, and they mirror the three ways the wrapper ever touches it:
//!
//! 1. **Speculative reads** ([`MapReadOps`], [`SortedReadOps`],
//!    [`QueueReadOps`]) — body-side observations, performed after the
//!    appropriate semantic lock is taken. Read-only observations run as
//!    **flattened opens** (`Txn::open_read`, no child transaction): a TVar
//!    backend has each read stamp-validated inline — the same per-var check
//!    the open-nested commit would have made — while a boosted backend
//!    ignores the transaction entirely ([`MapReadOps::TRANSACTIONAL_READS`]
//!    `== false`), because isolation for it comes from the semantic locks
//!    alone and the validation sweep is vacuous. Observations that mutate
//!    (`pop_front`) still run inside a real `Txn::open`.
//! 2. **Direct applies** ([`MapApplyOps`], [`QueueApplyOps`]) — mutations,
//!    run from commit handlers in direct mode under the handler lane (or,
//!    for eager classes, from the body with logged compensation). A TVar
//!    backend publishes these through the direct-mode write path; a boosted
//!    backend mutates its own concurrent structure in place.
//! 3. **Undo** ([`MapUndo`]) — the compensation surface: an eager class
//!    logs one [`UndoOp`] per first in-place write and the abort path
//!    replays the log in reverse through [`MapUndo::compensate`]. TVar
//!    backends get undo for free (speculative rollback discards buffered
//!    state), which is why only eagerly-applied mutations ever log.
//!
//! The umbrella aliases [`MapBackend`], [`SortedMapBackend`] and
//! [`QueueBackend`] are blanket-implemented from the layers, so a concrete
//! structure only implements the layer traits (via the `delegate_*_backend!`
//! macros below) and every collection keeps its single-bound signature.
//!
//! Two backend families implement the seam:
//!
//! * `Tx*` ([`txstruct::TxHashMap`], [`txstruct::SegmentedTxHashMap`],
//!   [`txstruct::TxTreeMap`], [`txstruct::TxVecDeque`]) — TVar-based,
//!   every operation threads the transaction; kept verbatim for the paper
//!   figures.
//! * **Boosted** ([`txstruct::BoostedHashMap`]) — a genuinely concurrent
//!   sharded hash map with no TVars on the hot path (the design point of
//!   transactional boosting: open-nested operations against a concurrent
//!   structure, isolation entirely from semantic locks plus commit/abort
//!   handlers). Its delegations drop the transaction on the floor.
//!
//! Backends are deliberately ignorant of the semantic lock tables: the
//! wrapper stripes its lock table by key hash (`locks::StripedTables`) and
//! serializes every committed mutation through the handler lane, so a
//! backend only ever sees the three surfaces above — no stripe, and no
//! stripe count, is visible at this interface. Wrapping the same backend
//! with 1 stripe or 16 yields identical committed histories.

use std::ops::Bound;
use stm::Txn;
use txstruct::{BoostedHashMap, SegmentedTxHashMap, TxHashMap, TxTreeMap, TxVecDeque};

// ----------------------------------------------------------------------
// Layer 1: speculative reads
// ----------------------------------------------------------------------

/// Body-side observation surface of an unordered map backend. Called inside
/// `Txn::open_read` (read-only flattened open) after the semantic lock
/// covering the observation is held (and from handlers in direct mode,
/// where `open_read` is a pass-through).
pub trait MapReadOps<K, V>: Send + Sync + 'static {
    /// Whether this backend's reads go through transactional memory.
    ///
    /// `true` (the default, and the only sound choice for any backend that
    /// touches a `TVar`) means a read-only observation must be validated —
    /// the collections run it under [`Txn::open_read`], which stamp-checks
    /// every var the body read. `false` declares a **boosted** backend:
    /// reads never touch a `TVar`, so under a held semantic lock they can be
    /// served straight from the concurrent structure with nothing to
    /// validate. A custom backend must only set this to `false` if its read
    /// methods are linearizable on their own; declaring it falsely turns
    /// flattened opens into unvalidated dirty reads.
    const TRANSACTIONAL_READS: bool = true;
    /// Look up a key.
    #[must_use]
    fn get(&self, tx: &mut Txn, key: &K) -> Option<V>;
    /// Whether a key is present.
    #[must_use]
    fn contains_key(&self, tx: &mut Txn, key: &K) -> bool;
    /// Number of entries.
    #[must_use]
    fn len(&self, tx: &mut Txn) -> usize;
    /// Whether empty.
    #[must_use]
    fn is_empty(&self, tx: &mut Txn) -> bool {
        self.len(tx) == 0
    }
    /// Snapshot of all entries (arbitrary order).
    #[must_use]
    fn entries(&self, tx: &mut Txn) -> Vec<(K, V)>;
}

/// Body-side observation surface of an ordered map backend (the stepwise
/// iteration and endpoint primitives of `TransactionalSortedMap`).
pub trait SortedReadOps<K, V>: MapReadOps<K, V> {
    /// Smallest entry.
    #[must_use]
    fn first_entry(&self, tx: &mut Txn) -> Option<(K, V)>;
    /// Largest entry.
    #[must_use]
    fn last_entry(&self, tx: &mut Txn) -> Option<(K, V)>;
    /// Smallest entry with key `>= key`.
    #[must_use]
    fn ceiling_entry(&self, tx: &mut Txn, key: &K) -> Option<(K, V)>;
    /// Largest entry with key `<= key`.
    #[must_use]
    fn floor_entry(&self, tx: &mut Txn, key: &K) -> Option<(K, V)>;
    /// Smallest entry with key `> key` (the stepwise iteration primitive).
    #[must_use]
    fn next_entry_after(&self, tx: &mut Txn, key: &K) -> Option<(K, V)>;
    /// Largest entry with key `< key`.
    #[must_use]
    fn prev_entry_before(&self, tx: &mut Txn, key: &K) -> Option<(K, V)>;
    /// Entries within bounds, in key order.
    #[must_use]
    fn range_entries(&self, tx: &mut Txn, lower: Bound<&K>, upper: Bound<&K>) -> Vec<(K, V)>;
}

/// Body-side observation surface of a FIFO backend.
pub trait QueueReadOps<T>: Send + Sync + 'static {
    /// See [`MapReadOps::TRANSACTIONAL_READS`] — same contract, FIFO seam.
    const TRANSACTIONAL_READS: bool = true;
    /// Front element without removal.
    #[must_use]
    fn peek_front(&self, tx: &mut Txn) -> Option<T>;
    /// Number of elements.
    #[must_use]
    fn len(&self, tx: &mut Txn) -> usize;
    /// Whether empty.
    #[must_use]
    fn is_empty(&self, tx: &mut Txn) -> bool {
        self.len(tx) == 0
    }
}

// ----------------------------------------------------------------------
// Layer 2: direct applies
// ----------------------------------------------------------------------

/// Handler-side mutation surface of an unordered map backend: run from
/// commit handlers in direct mode under the handler lane, or eagerly from
/// the body with a logged [`UndoOp`] per first write (txlint TX011).
pub trait MapApplyOps<K, V>: MapReadOps<K, V> {
    /// Insert or replace; returns the previous value.
    #[must_use]
    fn insert(&self, tx: &mut Txn, key: K, value: V) -> Option<V>;
    /// Remove a key; returns the previous value.
    #[must_use]
    fn remove(&self, tx: &mut Txn, key: &K) -> Option<V>;
}

/// Handler-side mutation surface of a FIFO backend. `push_front` is the
/// queue's undo surface: it returns a consumed item for abort compensation.
pub trait QueueApplyOps<T>: QueueReadOps<T> {
    /// Enqueue at the back.
    fn push_back(&self, tx: &mut Txn, item: T);
    /// Return an item to the front (abort compensation).
    fn push_front(&self, tx: &mut Txn, item: T);
    /// Dequeue from the front.
    #[must_use]
    fn pop_front(&self, tx: &mut Txn) -> Option<T>;
}

// ----------------------------------------------------------------------
// Layer 3: undo
// ----------------------------------------------------------------------

/// One logged compensation entry for an eagerly-applied map mutation: what
/// to do on abort to restore the committed state the mutation clobbered.
/// Only the *first* in-place write of a key needs an entry; later writes
/// are undone by the same restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndoOp<K, V> {
    /// The key held this value before the first in-place update.
    Restore(K, V),
    /// The key was absent before the first in-place insert.
    Delete(K),
}

/// The compensation surface of a map backend: replay an [`UndoOp`] against
/// the structure. The abort path drains the transaction's undo log in
/// **reverse** through this method, before any semantic lock is released
/// and under the handler lane (see `docs/PROTOCOL.md`).
///
/// The default body compensates through the apply layer, which is correct
/// for any backend whose `insert`/`remove` are their own inverses at the
/// entry level; a backend with cheaper internal restoration may override.
pub trait MapUndo<K, V>: MapApplyOps<K, V> {
    /// Apply one compensation entry.
    fn compensate(&self, tx: &mut Txn, op: UndoOp<K, V>) {
        match op {
            UndoOp::Restore(k, v) => {
                let _ = self.insert(tx, k, v);
            }
            UndoOp::Delete(k) => {
                let _ = self.remove(tx, &k);
            }
        }
    }
}

// ----------------------------------------------------------------------
// Umbrella aliases (blanket-implemented; collections bound on these)
// ----------------------------------------------------------------------

/// An unordered map usable as the committed store of a `TransactionalMap`:
/// the three layers combined. Blanket-implemented — concrete backends
/// implement the layer traits only.
pub trait MapBackend<K, V>: MapUndo<K, V> {}

impl<B, K, V> MapBackend<K, V> for B where B: MapUndo<K, V> {}

/// An ordered map usable as the committed store of a
/// `TransactionalSortedMap`: the map layers plus the ordered read surface.
pub trait SortedMapBackend<K, V>: MapBackend<K, V> + SortedReadOps<K, V> {}

impl<B, K, V> SortedMapBackend<K, V> for B where B: MapBackend<K, V> + SortedReadOps<K, V> {}

/// A FIFO usable as the committed store of a `TransactionalQueue`.
pub trait QueueBackend<T>: QueueApplyOps<T> {}

impl<B, T> QueueBackend<T> for B where B: QueueApplyOps<T> {}

// ----------------------------------------------------------------------
// Declarative delegation: one line per (structure, seam) pair
// ----------------------------------------------------------------------

/// Implement the map layers ([`MapReadOps`] + [`MapApplyOps`] + [`MapUndo`])
/// for a concrete structure by delegating each operation to the inherent
/// method of the same name.
///
/// The leading mode token says how the transaction is threaded:
/// * `tx` — the structure is transactional (TVar-based); every delegation
///   passes `tx` through.
/// * `direct` — the structure is a boosted concurrent map; the transaction
///   is discarded, because the structure's own synchronization (shard
///   locks) is all it needs and isolation comes from the semantic layer.
macro_rules! delegate_map_backend {
    ($mode:tt $backend:ident, K: [$($kb:tt)*], V: [$($vb:tt)*]) => {
        impl<K, V> MapReadOps<K, V> for $backend<K, V>
        where
            K: $($kb)* + Send + Sync + 'static,
            V: $($vb)* + Send + Sync + 'static,
        {
            const TRANSACTIONAL_READS: bool = delegate_map_backend!(@treads $mode);
            fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
                delegate_map_backend!(@call $mode, $backend::get, self, tx, key)
            }
            fn contains_key(&self, tx: &mut Txn, key: &K) -> bool {
                delegate_map_backend!(@call $mode, $backend::contains_key, self, tx, key)
            }
            fn len(&self, tx: &mut Txn) -> usize {
                delegate_map_backend!(@call $mode, $backend::len, self, tx)
            }
            fn entries(&self, tx: &mut Txn) -> Vec<(K, V)> {
                delegate_map_backend!(@call $mode, $backend::entries, self, tx)
            }
        }
        impl<K, V> MapApplyOps<K, V> for $backend<K, V>
        where
            K: $($kb)* + Send + Sync + 'static,
            V: $($vb)* + Send + Sync + 'static,
        {
            fn insert(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
                delegate_map_backend!(@call $mode, $backend::insert, self, tx, key, value)
            }
            fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
                delegate_map_backend!(@call $mode, $backend::remove, self, tx, key)
            }
        }
        impl<K, V> MapUndo<K, V> for $backend<K, V>
        where
            K: $($kb)* + Send + Sync + 'static,
            V: $($vb)* + Send + Sync + 'static,
        {
        }
    };
    (@treads tx) => {
        true
    };
    (@treads direct) => {
        false
    };
    (@call tx, $f:path, $self:expr, $tx:expr $(, $arg:expr)*) => {
        $f($self, $tx $(, $arg)*)
    };
    (@call direct, $f:path, $self:expr, $tx:expr $(, $arg:expr)*) => {{
        let _ = $tx;
        $f($self $(, $arg)*)
    }};
}

/// Implement [`SortedReadOps`] by delegation; same mode tokens as
/// [`delegate_map_backend!`].
macro_rules! delegate_sorted_backend {
    ($mode:tt $backend:ident, K: [$($kb:tt)*], V: [$($vb:tt)*]) => {
        impl<K, V> SortedReadOps<K, V> for $backend<K, V>
        where
            K: $($kb)* + Send + Sync + 'static,
            V: $($vb)* + Send + Sync + 'static,
        {
            fn first_entry(&self, tx: &mut Txn) -> Option<(K, V)> {
                delegate_map_backend!(@call $mode, $backend::first_entry, self, tx)
            }
            fn last_entry(&self, tx: &mut Txn) -> Option<(K, V)> {
                delegate_map_backend!(@call $mode, $backend::last_entry, self, tx)
            }
            fn ceiling_entry(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
                delegate_map_backend!(@call $mode, $backend::ceiling_entry, self, tx, key)
            }
            fn floor_entry(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
                delegate_map_backend!(@call $mode, $backend::floor_entry, self, tx, key)
            }
            fn next_entry_after(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
                delegate_map_backend!(@call $mode, $backend::next_entry_after, self, tx, key)
            }
            fn prev_entry_before(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
                delegate_map_backend!(@call $mode, $backend::prev_entry_before, self, tx, key)
            }
            fn range_entries(
                &self,
                tx: &mut Txn,
                lower: Bound<&K>,
                upper: Bound<&K>,
            ) -> Vec<(K, V)> {
                delegate_map_backend!(@call $mode, $backend::range_entries, self, tx, lower, upper)
            }
        }
    };
}

/// Implement the queue layers ([`QueueReadOps`] + [`QueueApplyOps`]) by
/// delegation; same mode tokens as [`delegate_map_backend!`].
macro_rules! delegate_queue_backend {
    ($mode:tt $backend:ident, T: [$($tb:tt)*]) => {
        impl<T> QueueReadOps<T> for $backend<T>
        where
            T: $($tb)* + Send + Sync + 'static,
        {
            const TRANSACTIONAL_READS: bool = delegate_map_backend!(@treads $mode);
            fn peek_front(&self, tx: &mut Txn) -> Option<T> {
                delegate_map_backend!(@call $mode, $backend::peek_front, self, tx)
            }
            fn len(&self, tx: &mut Txn) -> usize {
                delegate_map_backend!(@call $mode, $backend::len, self, tx)
            }
        }
        impl<T> QueueApplyOps<T> for $backend<T>
        where
            T: $($tb)* + Send + Sync + 'static,
        {
            fn push_back(&self, tx: &mut Txn, item: T) {
                delegate_map_backend!(@call $mode, $backend::push_back, self, tx, item)
            }
            fn push_front(&self, tx: &mut Txn, item: T) {
                delegate_map_backend!(@call $mode, $backend::push_front, self, tx, item)
            }
            fn pop_front(&self, tx: &mut Txn) -> Option<T> {
                delegate_map_backend!(@call $mode, $backend::pop_front, self, tx)
            }
        }
    };
}

// The TVar family: transaction threaded through every operation.
delegate_map_backend!(tx TxHashMap, K: [Clone + Eq + std::hash::Hash], V: [Clone]);
delegate_map_backend!(tx SegmentedTxHashMap, K: [Clone + Eq + std::hash::Hash], V: [Clone]);
delegate_map_backend!(tx TxTreeMap, K: [Clone + Ord], V: [Clone]);
delegate_sorted_backend!(tx TxTreeMap, K: [Clone + Ord], V: [Clone]);
delegate_queue_backend!(tx TxVecDeque, T: [Clone]);

// The boosted family: the transaction is ignored — shard mutexes order the
// physical accesses, semantic locks order the logical ones.
delegate_map_backend!(direct BoostedHashMap, K: [Clone + Eq + std::hash::Hash], V: [Clone]);
