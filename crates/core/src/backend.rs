//! Backend traits: the "underlying Map/Queue instance" slot of the paper's
//! collection classes.
//!
//! `TransactionalMap` et al. are *wrappers*: "transactional collection
//! classes wrap existing data structures, without the need for custom
//! implementations or knowledge of data structure internals" (paper
//! abstract). These traits are the wrapper's only view of the wrapped
//! structure. Any structure whose operations are transactional (take a
//! `&mut Txn`) can be wrapped — the reproduction wraps [`txstruct::TxHashMap`],
//! [`txstruct::SegmentedTxHashMap`] and [`txstruct::TxTreeMap`].
//!
//! Backends are deliberately ignorant of the semantic lock tables: the
//! wrapper stripes its lock table by key hash (`locks::StripedTables`) and
//! serializes every committed mutation through the handler lane, so a
//! backend only ever sees body-side open-nested reads and handler-side
//! direct-mode applies — no stripe, and no stripe count, is visible at this
//! interface. Wrapping the same backend with 1 stripe or 16 yields
//! identical committed histories.

use std::ops::Bound;
use stm::Txn;
use txstruct::{SegmentedTxHashMap, TxHashMap, TxTreeMap, TxVecDeque};

/// An unordered transactional map usable as the committed store of a
/// `TransactionalMap`.
pub trait MapBackend<K, V>: Send + Sync + 'static {
    /// Look up a key.
    fn get(&self, tx: &mut Txn, key: &K) -> Option<V>;
    /// Whether a key is present.
    fn contains_key(&self, tx: &mut Txn, key: &K) -> bool;
    /// Insert or replace; returns the previous value.
    fn insert(&self, tx: &mut Txn, key: K, value: V) -> Option<V>;
    /// Remove a key; returns the previous value.
    fn remove(&self, tx: &mut Txn, key: &K) -> Option<V>;
    /// Number of entries.
    fn len(&self, tx: &mut Txn) -> usize;
    /// Whether empty.
    fn is_empty(&self, tx: &mut Txn) -> bool {
        self.len(tx) == 0
    }
    /// Snapshot of all entries (arbitrary order).
    fn entries(&self, tx: &mut Txn) -> Vec<(K, V)>;
}

/// An ordered transactional map usable as the committed store of a
/// `TransactionalSortedMap`.
pub trait SortedMapBackend<K, V>: MapBackend<K, V> {
    /// Smallest entry.
    fn first_entry(&self, tx: &mut Txn) -> Option<(K, V)>;
    /// Largest entry.
    fn last_entry(&self, tx: &mut Txn) -> Option<(K, V)>;
    /// Smallest entry with key `>= key`.
    fn ceiling_entry(&self, tx: &mut Txn, key: &K) -> Option<(K, V)>;
    /// Largest entry with key `<= key`.
    fn floor_entry(&self, tx: &mut Txn, key: &K) -> Option<(K, V)>;
    /// Smallest entry with key `> key` (the stepwise iteration primitive).
    fn next_entry_after(&self, tx: &mut Txn, key: &K) -> Option<(K, V)>;
    /// Largest entry with key `< key`.
    fn prev_entry_before(&self, tx: &mut Txn, key: &K) -> Option<(K, V)>;
    /// Entries within bounds, in key order.
    fn range_entries(&self, tx: &mut Txn, lower: Bound<&K>, upper: Bound<&K>) -> Vec<(K, V)>;
}

/// A transactional FIFO usable as the committed store of a
/// `TransactionalQueue`.
pub trait QueueBackend<T>: Send + Sync + 'static {
    /// Enqueue at the back.
    fn push_back(&self, tx: &mut Txn, item: T);
    /// Return an item to the front (abort compensation).
    fn push_front(&self, tx: &mut Txn, item: T);
    /// Dequeue from the front.
    fn pop_front(&self, tx: &mut Txn) -> Option<T>;
    /// Front element without removal.
    fn peek_front(&self, tx: &mut Txn) -> Option<T>;
    /// Number of elements.
    fn len(&self, tx: &mut Txn) -> usize;
    /// Whether empty.
    fn is_empty(&self, tx: &mut Txn) -> bool {
        self.len(tx) == 0
    }
}

impl<K, V> MapBackend<K, V> for TxHashMap<K, V>
where
    K: Clone + Eq + std::hash::Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
        TxHashMap::get(self, tx, key)
    }
    fn contains_key(&self, tx: &mut Txn, key: &K) -> bool {
        TxHashMap::contains_key(self, tx, key)
    }
    fn insert(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
        TxHashMap::insert(self, tx, key, value)
    }
    fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
        TxHashMap::remove(self, tx, key)
    }
    fn len(&self, tx: &mut Txn) -> usize {
        TxHashMap::len(self, tx)
    }
    fn entries(&self, tx: &mut Txn) -> Vec<(K, V)> {
        TxHashMap::entries(self, tx)
    }
}

impl<K, V> MapBackend<K, V> for SegmentedTxHashMap<K, V>
where
    K: Clone + Eq + std::hash::Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
        SegmentedTxHashMap::get(self, tx, key)
    }
    fn contains_key(&self, tx: &mut Txn, key: &K) -> bool {
        SegmentedTxHashMap::contains_key(self, tx, key)
    }
    fn insert(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
        SegmentedTxHashMap::insert(self, tx, key, value)
    }
    fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
        SegmentedTxHashMap::remove(self, tx, key)
    }
    fn len(&self, tx: &mut Txn) -> usize {
        SegmentedTxHashMap::len(self, tx)
    }
    fn entries(&self, tx: &mut Txn) -> Vec<(K, V)> {
        SegmentedTxHashMap::entries(self, tx)
    }
}

impl<K, V> MapBackend<K, V> for TxTreeMap<K, V>
where
    K: Clone + Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
        TxTreeMap::get(self, tx, key)
    }
    fn contains_key(&self, tx: &mut Txn, key: &K) -> bool {
        TxTreeMap::contains_key(self, tx, key)
    }
    fn insert(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
        TxTreeMap::insert(self, tx, key, value)
    }
    fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
        TxTreeMap::remove(self, tx, key)
    }
    fn len(&self, tx: &mut Txn) -> usize {
        TxTreeMap::len(self, tx)
    }
    fn entries(&self, tx: &mut Txn) -> Vec<(K, V)> {
        TxTreeMap::entries(self, tx)
    }
}

impl<K, V> SortedMapBackend<K, V> for TxTreeMap<K, V>
where
    K: Clone + Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn first_entry(&self, tx: &mut Txn) -> Option<(K, V)> {
        TxTreeMap::first_entry(self, tx)
    }
    fn last_entry(&self, tx: &mut Txn) -> Option<(K, V)> {
        TxTreeMap::last_entry(self, tx)
    }
    fn ceiling_entry(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
        TxTreeMap::ceiling_entry(self, tx, key)
    }
    fn floor_entry(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
        TxTreeMap::floor_entry(self, tx, key)
    }
    fn next_entry_after(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
        TxTreeMap::next_entry_after(self, tx, key)
    }
    fn prev_entry_before(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
        TxTreeMap::prev_entry_before(self, tx, key)
    }
    fn range_entries(&self, tx: &mut Txn, lower: Bound<&K>, upper: Bound<&K>) -> Vec<(K, V)> {
        TxTreeMap::range_entries(self, tx, lower, upper)
    }
}

impl<T> QueueBackend<T> for TxVecDeque<T>
where
    T: Clone + Send + Sync + 'static,
{
    fn push_back(&self, tx: &mut Txn, item: T) {
        TxVecDeque::push_back(self, tx, item)
    }
    fn push_front(&self, tx: &mut Txn, item: T) {
        TxVecDeque::push_front(self, tx, item)
    }
    fn pop_front(&self, tx: &mut Txn) -> Option<T> {
        TxVecDeque::pop_front(self, tx)
    }
    fn peek_front(&self, tx: &mut Txn) -> Option<T> {
        TxVecDeque::peek_front(self, tx)
    }
    fn len(&self, tx: &mut Txn) -> usize {
        TxVecDeque::len(self, tx)
    }
}
