//! The "Java" configuration: the same warehouse with `synchronized`-style
//! per-structure locks, driven by the simulator's lock-mode engine.

use crate::model::*;
use parking_lot::Mutex;
use sim::LockRecorder;
use std::collections::HashMap;
use txstruct::{LockHashMap, LockTreeMap};

/// Virtual-cycle cost of a hash-map operation under a lock.
pub const C_HASH: u64 = 60;
/// Virtual-cycle cost of a tree-map operation under a lock.
pub const C_TREE: u64 = 110;
/// Virtual-cycle cost of a counter bump under a lock.
pub const C_CNT: u64 = 15;

// Lock-id layout for the virtual-time replay.
fn district_counter_lock(d: usize) -> u64 {
    (d as u64) * 8 + 1
}
fn district_orders_lock(d: usize) -> u64 {
    (d as u64) * 8 + 2
}
fn district_neworders_lock(d: usize) -> u64 {
    (d as u64) * 8 + 3
}
fn district_ytd_lock(d: usize) -> u64 {
    (d as u64) * 8 + 4
}
const HISTORY_LOCK: u64 = 1_001;
const CUSTOMER_INDEX_LOCK: u64 = 1_006;
const HISTORY_UID_LOCK: u64 = 1_002;
const WARE_YTD_LOCK: u64 = 1_003;
const STOCK_LOCK: u64 = 1_004;
const CUSTOMER_LOCK: u64 = 1_005;

/// One district with lock-based structures.
pub struct LockDistrict {
    /// Next order id.
    pub next_order: Mutex<i64>,
    /// Order id → order header.
    pub order_table: LockTreeMap<i64, Order>,
    /// Undelivered order ids.
    pub new_order_table: LockTreeMap<i64, u64>,
    /// District year-to-date.
    pub ytd: Mutex<i64>,
}

/// The warehouse with Java-style synchronization.
pub struct LockWarehouse {
    /// Per-district state.
    pub districts: Vec<LockDistrict>,
    /// Customer id -> packed (district, order id) of the latest order.
    pub customer_index: LockHashMap<i64, i64>,
    /// Payment history.
    pub history_table: LockHashMap<i64, History>,
    /// History id generator.
    pub history_uid: Mutex<i64>,
    /// Warehouse year-to-date.
    pub ytd: Mutex<i64>,
    /// Item stock quantities.
    pub stock: Mutex<HashMap<u64, i64>>,
    /// Customer balances.
    pub customers: Mutex<HashMap<u64, i64>>,
    /// Item catalog.
    pub prices: Vec<i64>,
    /// Initial per-item stock.
    pub initial_stock: i64,
}

impl LockWarehouse {
    /// Build and populate.
    pub fn new() -> Self {
        let initial_stock = 100_000;
        let w = LockWarehouse {
            districts: (0..DISTRICTS)
                .map(|_| LockDistrict {
                    next_order: Mutex::new(0),
                    order_table: LockTreeMap::new(),
                    new_order_table: LockTreeMap::new(),
                    ytd: Mutex::new(0),
                })
                .collect(),
            customer_index: LockHashMap::new(),
            history_table: LockHashMap::new(),
            history_uid: Mutex::new(0),
            ytd: Mutex::new(0),
            stock: Mutex::new(HashMap::new()),
            customers: Mutex::new(HashMap::new()),
            prices: (0..ITEMS).map(|i| 100 + (i as i64 % 900)).collect(),
            initial_stock,
        };
        {
            let mut stock = w.stock.lock();
            for item in 0..ITEMS {
                stock.insert(item, initial_stock);
            }
        }
        {
            let mut customers = w.customers.lock();
            for c in 0..(DISTRICTS as u64 * CUSTOMERS_PER_DISTRICT) {
                customers.insert(c, 0);
            }
        }
        w
    }

    fn new_order(&self, rec: &mut LockRecorder, rng: &mut TxnRng, think: u64) {
        let di = rng.below(DISTRICTS as u64) as usize;
        let d = &self.districts[di];
        let customer = rng.below(DISTRICTS as u64 * CUSTOMERS_PER_DISTRICT);
        let id = rec.critical(district_counter_lock(di), C_CNT, || {
            let mut n = d.next_order.lock();
            let id = *n;
            *n += 1;
            id
        });
        rec.work(think);
        let mut items = Vec::with_capacity(LINES_PER_ORDER as usize);
        let mut total = 0i64;
        for _ in 0..LINES_PER_ORDER {
            let item = rng.below(ITEMS);
            items.push(item);
            total += self.prices[item as usize];
            rec.critical(STOCK_LOCK, C_HASH, || {
                let mut stock = self.stock.lock();
                *stock.entry(item).or_insert(0) -= 1;
            });
        }
        rec.work(think);
        let order = Order {
            id,
            customer,
            items,
            total,
            delivered: false,
        };
        rec.critical(district_orders_lock(di), C_TREE, || {
            d.order_table.insert(id, order);
        });
        rec.critical(district_neworders_lock(di), C_TREE, || {
            d.new_order_table.insert(id, customer);
        });
        rec.critical(CUSTOMER_INDEX_LOCK, C_HASH, || {
            self.customer_index
                .insert(customer as i64, di as i64 * 1_000_000_000 + id);
        });
    }

    fn payment(&self, rec: &mut LockRecorder, rng: &mut TxnRng, think: u64) {
        let di = rng.below(DISTRICTS as u64) as usize;
        let d = &self.districts[di];
        let customer = rng.below(DISTRICTS as u64 * CUSTOMERS_PER_DISTRICT);
        let amount = 100 + rng.below(5_000) as i64;
        rec.critical(WARE_YTD_LOCK, C_CNT, || {
            *self.ytd.lock() += amount;
        });
        rec.critical(district_ytd_lock(di), C_CNT, || {
            *d.ytd.lock() += amount;
        });
        rec.work(think);
        rec.critical(CUSTOMER_LOCK, C_HASH, || {
            *self.customers.lock().entry(customer).or_insert(0) -= amount;
        });
        let hid = rec.critical(HISTORY_UID_LOCK, C_CNT, || {
            let mut n = self.history_uid.lock();
            let id = *n;
            *n += 1;
            id
        });
        rec.work(think);
        rec.critical(HISTORY_LOCK, C_HASH, || {
            self.history_table.insert(hid, History { customer, amount });
        });
    }

    fn order_status(&self, rec: &mut LockRecorder, rng: &mut TxnRng, think: u64) {
        let customer = rng.below(DISTRICTS as u64 * CUSTOMERS_PER_DISTRICT);
        rec.work(think);
        let code = rec.critical(CUSTOMER_INDEX_LOCK, C_HASH, || {
            self.customer_index.get(&(customer as i64))
        });
        if let Some(code) = code {
            let di = (code / 1_000_000_000) as usize;
            let id = code % 1_000_000_000;
            let order = rec.critical(district_orders_lock(di), C_TREE, || {
                self.districts[di].order_table.get(&id)
            });
            if let Some(order) = order {
                rec.critical(CUSTOMER_LOCK, C_HASH, || {
                    let _ = self.customers.lock().get(&order.customer).copied();
                });
            }
        }
    }

    fn delivery(&self, rec: &mut LockRecorder, rng: &mut TxnRng, think: u64) {
        let di = rng.below(DISTRICTS as u64) as usize;
        let d = &self.districts[di];
        rec.work(think);
        // Java would hold the new-order lock across the dequeue.
        let oldest = rec.critical(district_neworders_lock(di), C_TREE, || {
            let k = d.new_order_table.first_key()?;
            d.new_order_table.remove(&k).map(|c| (k, c))
        });
        if let Some((id, _)) = oldest {
            let order = rec.critical(district_orders_lock(di), C_TREE, || {
                if let Some(mut o) = d.order_table.get(&id) {
                    o.delivered = true;
                    let copy = o.clone();
                    d.order_table.insert(id, o);
                    Some(copy)
                } else {
                    None
                }
            });
            if let Some(o) = order {
                rec.critical(CUSTOMER_LOCK, C_HASH, || {
                    *self.customers.lock().entry(o.customer).or_insert(0) -= o.total;
                });
            }
        }
    }

    fn stock_level(&self, rec: &mut LockRecorder, rng: &mut TxnRng, think: u64) {
        let di = rng.below(DISTRICTS as u64) as usize;
        let d = &self.districts[di];
        let next = rec.critical(district_counter_lock(di), C_CNT, || *d.next_order.lock());
        rec.work(think);
        let lo = (next - 8).max(0);
        let recent = rec.critical(district_orders_lock(di), C_TREE * 4, || {
            d.order_table.range_entries(
                std::ops::Bound::Included(lo),
                std::ops::Bound::Excluded(next),
            )
        });
        let mut low = 0;
        for (_, order) in recent {
            for item in order.items {
                rec.critical(STOCK_LOCK, C_HASH, || {
                    if self.stock.lock().get(&item).copied().unwrap_or(0) < self.initial_stock / 2 {
                        low += 1;
                    }
                });
            }
        }
        std::hint::black_box(low);
    }

    /// Dispatch one operation by mix roll.
    pub fn run_op(&self, rec: &mut LockRecorder, rng: &mut TxnRng, think: u64) {
        match op_for(rng.next()) {
            OpKind::NewOrder => self.new_order(rec, rng, think),
            OpKind::Payment => self.payment(rec, rng, think),
            OpKind::OrderStatus => self.order_status(rec, rng, think),
            OpKind::Delivery => self.delivery(rec, rng, think),
            OpKind::StockLevel => self.stock_level(rec, rng, think),
        }
    }
}

impl Default for LockWarehouse {
    fn default() -> Self {
        Self::new()
    }
}

/// The warehouse workload adapted to the simulator's lock engine.
pub struct JbbLockWorkload {
    /// The shared warehouse.
    pub warehouse: LockWarehouse,
    /// Transactions per CPU.
    pub txns_per_cpu: usize,
    /// Workload seed.
    pub seed: u64,
    /// Think cycles inside each operation.
    pub think: u64,
}

impl sim::LockWorkload for JbbLockWorkload {
    fn txn_count(&self, _cpu: usize) -> usize {
        self.txns_per_cpu
    }

    fn run(&self, cpu: usize, seq: usize, rec: &mut LockRecorder) {
        let mut rng = TxnRng::new(self.seed, cpu, seq);
        self.warehouse.run_op(rec, &mut rng, self.think);
    }
}
