//! Domain model for the high-contention SPECjbb2000-style workload: one
//! shared warehouse of TPC-C-flavored records, serviced by all CPUs.

/// Number of districts in the single shared warehouse (TPC-C uses 10).
pub const DISTRICTS: usize = 10;
/// Customers per district.
pub const CUSTOMERS_PER_DISTRICT: u64 = 30;
/// Item catalog size.
pub const ITEMS: u64 = 200;
/// Items referenced by one NewOrder.
pub const LINES_PER_ORDER: u64 = 5;

/// An order header stored in `District.orderTable`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Order {
    /// District-local order id (drawn from `District.nextOrder`).
    pub id: i64,
    /// Ordering customer.
    pub customer: u64,
    /// Item ids of the order lines.
    pub items: Vec<u64>,
    /// Total price in cents.
    pub total: i64,
    /// Whether Delivery has processed it.
    pub delivered: bool,
}

/// A payment record stored in `Warehouse.historyTable`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History {
    /// Paying customer.
    pub customer: u64,
    /// Amount in cents.
    pub amount: i64,
}

/// The five TPC-C style operations of SPECjbb2000.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Create an order: draw an order id, price items, decrement stock,
    /// insert into order and new-order tables.
    NewOrder,
    /// Record a payment: warehouse/district year-to-date, customer balance,
    /// history insert.
    Payment,
    /// Read a customer's most recent order.
    OrderStatus,
    /// Deliver the oldest undelivered order of a district.
    Delivery,
    /// Count low-stock items among recent orders of a district.
    StockLevel,
}

/// SPECjbb/TPC-C operation mix (percent weights 43/43/5/5/4 scaled).
pub fn op_for(roll: u64) -> OpKind {
    match roll % 100 {
        0..=42 => OpKind::NewOrder,
        43..=85 => OpKind::Payment,
        86..=90 => OpKind::OrderStatus,
        91..=95 => OpKind::Delivery,
        _ => OpKind::StockLevel,
    }
}

/// Deterministic per-transaction RNG (SplitMix64). Seeded from
/// `(seed, cpu, seq)` so a re-executed transaction replays identically.
#[derive(Debug, Clone)]
pub struct TxnRng(u64);

impl TxnRng {
    /// Create the RNG for transaction `seq` of `cpu`.
    pub fn new(seed: u64, cpu: usize, seq: usize) -> Self {
        let mut x = seed ^ (cpu as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = x.wrapping_add((seq as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        TxnRng(x)
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)] // an RNG step, not an Iterator
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_identity() {
        let mut a = TxnRng::new(42, 3, 7);
        let mut b = TxnRng::new(42, 3, 7);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = TxnRng::new(42, 3, 8);
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn op_mix_covers_all_ops() {
        let mut seen = std::collections::HashSet::new();
        for roll in 0..100 {
            seen.insert(op_for(roll));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn op_mix_weights_roughly_tpcc() {
        let n = |kind: OpKind| (0..100).filter(|&r| op_for(r) == kind).count();
        assert_eq!(n(OpKind::NewOrder), 43);
        assert_eq!(n(OpKind::Payment), 43);
        assert_eq!(n(OpKind::OrderStatus), 5);
        assert_eq!(n(OpKind::Delivery), 5);
        assert_eq!(n(OpKind::StockLevel), 4);
    }
}
