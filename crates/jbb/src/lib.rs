//! # jbb — a high-contention SPECjbb2000-like warehouse workload
//!
//! Reproduces the paper's §6.3 evaluation workload: SPECjbb2000 modified so
//! that **all threads share a single warehouse**, each of the five TPC-C
//! style operations running as one atomic transaction ("a first step
//! baseline parallelization by a novice parallel programmer"), with
//! `java.util` collection classes in place of the original binary tree.
//!
//! Four configurations map to the four Figure-4 series:
//!
//! | Series | This crate |
//! |--------|------------|
//! | Java | [`LockWarehouse`] + [`JbbLockWorkload`] (per-structure locks, lock-mode simulation) |
//! | Atomos Baseline | [`TmWarehouse`] with [`TmConfig::Baseline`] |
//! | Atomos Open | [`TmConfig::Open`] (open-nested counters) |
//! | Atomos Transactional | [`TmConfig::Transactional`] (+ transactional collection classes on `historyTable`, `orderTable`, `newOrderTable`) |
//!
//! The shared-state skeleton matches the paper's conflict analysis: the
//! `District.nextOrder` id generator and the three hot shared maps are
//! exactly the structures the paper identifies (via TAPE profiling) as the
//! dominant sources of lost work.

#![warn(missing_docs)]

mod lock;
mod model;
mod tm;

pub use lock::{JbbLockWorkload, LockDistrict, LockWarehouse, C_CNT, C_HASH, C_TREE};
pub use model::{
    op_for, History, OpKind, Order, TxnRng, CUSTOMERS_PER_DISTRICT, DISTRICTS, ITEMS,
    LINES_PER_ORDER,
};
pub use tm::{District, JCounter, JMap, JSorted, JbbTmWorkload, TmConfig, TmWarehouse};

/// Default think-time (cycles) inserted inside each operation, emulating the
/// application logic surrounding the shared-structure accesses.
pub const DEFAULT_THINK: u64 = 300;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tm_workload_runs_and_keeps_invariants_single_cpu() {
        for config in [TmConfig::Baseline, TmConfig::Open, TmConfig::Transactional] {
            let w = JbbTmWorkload {
                warehouse: TmWarehouse::new(config),
                txns_per_cpu: 120,
                seed: 7,
                think: 50,
            };
            let r = sim::run_tm(1, &w);
            assert_eq!(r.commits, 120);
            w.warehouse
                .check_invariants()
                .unwrap_or_else(|e| panic!("{config:?}: {e}"));
        }
    }

    #[test]
    fn tm_workload_keeps_invariants_under_simulated_contention() {
        for config in [TmConfig::Baseline, TmConfig::Open, TmConfig::Transactional] {
            let w = JbbTmWorkload {
                warehouse: TmWarehouse::new(config),
                txns_per_cpu: 40,
                seed: 11,
                think: 50,
            };
            let r = sim::run_tm(8, &w);
            assert_eq!(r.commits, 8 * 40);
            w.warehouse
                .check_invariants()
                .unwrap_or_else(|e| panic!("{config:?}: {e}"));
        }
    }

    #[test]
    fn tm_workload_keeps_invariants_under_real_threads() {
        let warehouse = std::sync::Arc::new(TmWarehouse::new(TmConfig::Transactional));
        std::thread::scope(|s| {
            for cpu in 0..4 {
                let w = warehouse.clone();
                s.spawn(move || {
                    for seq in 0..60 {
                        let mut rng = TxnRng::new(3, cpu, seq);
                        stm::atomic(|tx| {
                            // Re-seed inside: the body must replay identically.
                            let mut r2 = rng.clone();
                            w.run_op(tx, &mut r2, 0);
                        });
                        let _ = rng.next();
                    }
                });
            }
        });
        warehouse.check_invariants().unwrap();
    }

    #[test]
    fn lock_workload_runs_all_ops() {
        let w = JbbLockWorkload {
            warehouse: LockWarehouse::new(),
            txns_per_cpu: 200,
            seed: 7,
            think: 50,
        };
        let r = sim::run_lock(4, &w);
        assert_eq!(r.commits, 800);
        assert!(r.makespan > 0);
        // The same op mix ran: history table non-empty, orders exist.
        assert!(!w.warehouse.history_table.is_empty());
        let orders: usize = w
            .warehouse
            .districts
            .iter()
            .map(|d| d.order_table.len())
            .sum();
        assert!(orders > 0);
    }

    #[test]
    fn baseline_conflicts_exceed_transactional_conflicts() {
        // The core Figure-4 claim in miniature: at equal work, the Baseline
        // configuration loses far more transactions to violations than the
        // Transactional configuration.
        let run = |config| {
            let w = JbbTmWorkload {
                warehouse: TmWarehouse::new(config),
                txns_per_cpu: 30,
                seed: 13,
                think: 200,
            };
            let r = sim::run_tm(8, &w);
            (r.violations_memory + r.violations_semantic, r.makespan)
        };
        let (v_base, _) = run(TmConfig::Baseline);
        let (v_tx, _) = run(TmConfig::Transactional);
        assert!(
            v_base > v_tx.saturating_mul(2),
            "expected Baseline violations ({v_base}) >> Transactional ({v_tx})"
        );
    }
}
