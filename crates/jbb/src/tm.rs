//! Transactional (Atomos-style) configurations of the warehouse workload.
//!
//! Three configurations, mirroring the paper's Figure-4 series:
//!
//! * [`TmConfig::Baseline`] — "a first step baseline parallelization by a
//!   novice parallel programmer": each TPC-C operation is one big atomic
//!   transaction over plain transactional structures. Global counters
//!   (`District.nextOrder`, the history-id generator) and map internals
//!   make every pair of operations conflict.
//! * [`TmConfig::Open`] — the counters are accessed in **open-nested
//!   transactions** (paper: "wrapping reads and writes to these counters in
//!   open-nested transactions ... preserve the counter semantics while
//!   reducing lost work"). Map internals still conflict.
//! * [`TmConfig::Transactional`] — additionally, the three hot shared maps
//!   (`Warehouse.historyTable`, `District.orderTable`,
//!   `District.newOrderTable`) are wrapped in `TransactionalMap` /
//!   `TransactionalSortedMap`.

use crate::model::*;
use stm::Txn;
use txcollections::{TransactionalMap, TransactionalSortedMap};
use txstruct::{TxCounter, TxHashMap, TxTreeMap};

/// Which Figure-4 Atomos series to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmConfig {
    /// Whole-op transactions over plain structures.
    Baseline,
    /// Open-nested counters, plain maps.
    Open,
    /// Open-nested counters + transactional collection classes.
    Transactional,
}

/// A counter that is a serialization point in `Baseline` and open-nested
/// (dependency-free) otherwise.
pub struct JCounter {
    inner: TxCounter,
    open: bool,
}

impl JCounter {
    fn new(open: bool) -> Self {
        JCounter {
            inner: TxCounter::new(0),
            open,
        }
    }

    /// Draw the next value.
    pub fn next(&self, tx: &mut Txn) -> i64 {
        if self.open {
            self.inner.next_uid(tx)
        } else {
            self.inner.add(tx, 1)
        }
    }

    /// Add to the counter (year-to-date accumulators).
    pub fn add(&self, tx: &mut Txn, delta: i64) {
        if self.open {
            self.inner.add_open(tx, delta);
        } else {
            self.inner.add(tx, delta);
        }
    }

    /// Read the current value.
    pub fn get(&self, tx: &mut Txn) -> i64 {
        if self.open {
            let inner = self.inner.clone();
            tx.open(move |otx| inner.get(otx))
        } else {
            self.inner.get(tx)
        }
    }

    /// Committed value (outside transactions).
    pub fn get_committed(&self) -> i64 {
        self.inner.get_committed()
    }

    /// Label the counter for conflict attribution.
    pub fn set_label(&self, label: impl Into<String>) {
        self.inner.var().set_label(label);
    }
}

/// A map that is bare in `Baseline`/`Open` and wrapped in `Transactional`.
pub enum JMap<V: Clone + Send + Sync + 'static> {
    /// Plain transactional hash map (internals conflict).
    Bare(TxHashMap<i64, V>),
    /// Semantic-concurrency-control wrapper.
    Wrapped(TransactionalMap<i64, V>),
}

impl<V: Clone + Send + Sync + 'static> JMap<V> {
    /// Insert a fresh key (blind where supported — the key is a fresh UID).
    pub fn insert_new(&self, tx: &mut Txn, k: i64, v: V) {
        match self {
            JMap::Bare(m) => {
                m.insert(tx, k, v);
            }
            JMap::Wrapped(m) => m.put_discard(tx, k, v),
        }
    }

    /// Look up a key.
    pub fn get(&self, tx: &mut Txn, k: &i64) -> Option<V> {
        match self {
            JMap::Bare(m) => m.get(tx, k),
            JMap::Wrapped(m) => m.get(tx, k),
        }
    }

    /// Committed entry count.
    pub fn committed_len(&self) -> usize {
        match self {
            JMap::Bare(m) => stm::atomic(|tx| m.len(tx)),
            JMap::Wrapped(m) => stm::atomic(|tx| m.size(tx)),
        }
    }

    /// Label the map's header for conflict attribution (bare maps only —
    /// wrapped maps leave no memory footprint in the parent).
    pub fn set_label(&self, label: impl Into<String>) {
        if let JMap::Bare(m) = self {
            stm::label_var(m.header_var_id(), label);
        }
    }
}

/// A sorted map that is bare in `Baseline`/`Open` and wrapped in
/// `Transactional`.
pub enum JSorted<V: Clone + Send + Sync + 'static> {
    /// Plain transactional red–black tree (rotations conflict).
    Bare(TxTreeMap<i64, V>),
    /// Semantic-concurrency-control wrapper.
    Wrapped(TransactionalSortedMap<i64, V>),
}

impl<V: Clone + Send + Sync + 'static> JSorted<V> {
    /// Insert a fresh key.
    pub fn insert_new(&self, tx: &mut Txn, k: i64, v: V) {
        match self {
            JSorted::Bare(m) => {
                m.insert(tx, k, v);
            }
            JSorted::Wrapped(m) => m.put_discard(tx, k, v),
        }
    }

    /// Replace an existing key's value.
    pub fn update(&self, tx: &mut Txn, k: i64, v: V) {
        match self {
            JSorted::Bare(m) => {
                m.insert(tx, k, v);
            }
            JSorted::Wrapped(m) => m.put_discard(tx, k, v),
        }
    }

    /// Look up a key.
    pub fn get(&self, tx: &mut Txn, k: &i64) -> Option<V> {
        match self {
            JSorted::Bare(m) => m.get(tx, k),
            JSorted::Wrapped(m) => m.get(tx, k),
        }
    }

    /// Remove a key.
    pub fn remove(&self, tx: &mut Txn, k: &i64) -> Option<V> {
        match self {
            JSorted::Bare(m) => m.remove(tx, k),
            JSorted::Wrapped(m) => m.remove(tx, k),
        }
    }

    /// Smallest entry.
    pub fn first_entry(&self, tx: &mut Txn) -> Option<(i64, V)> {
        match self {
            JSorted::Bare(m) => m.first_entry(tx),
            JSorted::Wrapped(m) => {
                m.first_in_range(tx, std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
            }
        }
    }

    /// Largest entry.
    pub fn last_entry(&self, tx: &mut Txn) -> Option<(i64, V)> {
        match self {
            JSorted::Bare(m) => m.last_entry(tx),
            JSorted::Wrapped(m) => {
                m.last_in_range(tx, std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
            }
        }
    }

    /// Entries in `[lo, hi)`.
    pub fn range(&self, tx: &mut Txn, lo: i64, hi: i64) -> Vec<(i64, V)> {
        match self {
            JSorted::Bare(m) => m.range_entries(
                tx,
                std::ops::Bound::Included(&lo),
                std::ops::Bound::Excluded(&hi),
            ),
            JSorted::Wrapped(m) => m.range_entries(
                tx,
                std::ops::Bound::Included(lo),
                std::ops::Bound::Excluded(hi),
            ),
        }
    }

    /// Committed entry count.
    pub fn committed_len(&self) -> usize {
        match self {
            JSorted::Bare(m) => stm::atomic(|tx| m.len(tx)),
            JSorted::Wrapped(m) => stm::atomic(|tx| m.size(tx)),
        }
    }

    /// Label the tree's header for conflict attribution (bare trees only).
    pub fn set_label(&self, label: impl Into<String>) {
        if let JSorted::Bare(m) = self {
            stm::label_var(m.header_var_id(), label);
        }
    }
}

/// One district of the shared warehouse.
pub struct District {
    /// The order-id generator — the paper's headline conflict source.
    pub next_order: JCounter,
    /// Order id → order header (sorted: OrderStatus/StockLevel scan it).
    pub order_table: JSorted<Order>,
    /// Undelivered order ids (sorted: Delivery takes the oldest).
    pub new_order_table: JSorted<u64>,
    /// District year-to-date payment total.
    pub ytd: JCounter,
}

/// The single shared warehouse.
pub struct TmWarehouse {
    /// Per-district state.
    pub districts: Vec<District>,
    /// Customer id -> packed (district, order id) of the customer's most
    /// recent order; OrderStatus reads it, NewOrder blind-overwrites it
    /// (the "LastModified" idiom of §5.1).
    pub customer_index: JMap<i64>,
    /// Payment history (hash map: only point lookups/inserts).
    pub history_table: JMap<History>,
    /// History-record id generator.
    pub history_uid: JCounter,
    /// Warehouse year-to-date payment total.
    pub ytd: JCounter,
    /// Item id → stock quantity (plain in every configuration; per-item
    /// conflicts here are genuine, not artifacts).
    pub stock: TxHashMap<u64, i64>,
    /// Global customer id → balance (plain in every configuration).
    pub customers: TxHashMap<u64, i64>,
    /// Item id → price in cents (immutable catalog).
    pub prices: Vec<i64>,
    /// Initial per-item stock.
    pub initial_stock: i64,
}

impl TmWarehouse {
    /// Build and populate a warehouse for the given configuration.
    pub fn new(config: TmConfig) -> Self {
        let open = config != TmConfig::Baseline;
        let wrapped = config == TmConfig::Transactional;
        let mk_sorted = |_: &str| {
            if wrapped {
                JSorted::Wrapped(TransactionalSortedMap::new())
            } else {
                JSorted::Bare(TxTreeMap::new())
            }
        };
        let districts = (0..DISTRICTS)
            .map(|_| District {
                next_order: JCounter::new(open),
                order_table: mk_sorted("orders"),
                new_order_table: if wrapped {
                    JSorted::Wrapped(TransactionalSortedMap::new())
                } else {
                    JSorted::Bare(TxTreeMap::new())
                },
                ytd: JCounter::new(open),
            })
            .collect();
        let initial_stock = 100_000;
        let w = TmWarehouse {
            districts,
            customer_index: if wrapped {
                JMap::Wrapped(TransactionalMap::with_capacity(1024))
            } else {
                JMap::Bare(TxHashMap::with_capacity(1024))
            },
            history_table: if wrapped {
                JMap::Wrapped(TransactionalMap::with_capacity(4096))
            } else {
                JMap::Bare(TxHashMap::with_capacity(4096))
            },
            history_uid: JCounter::new(open),
            ytd: JCounter::new(open),
            stock: TxHashMap::with_capacity(1024),
            customers: TxHashMap::with_capacity(1024),
            prices: (0..ITEMS).map(|i| 100 + (i as i64 % 900)).collect(),
            initial_stock,
        };
        stm::atomic(|tx| {
            for item in 0..ITEMS {
                w.stock.insert(tx, item, initial_stock);
            }
            for c in 0..(DISTRICTS as u64 * CUSTOMERS_PER_DISTRICT) {
                w.customers.insert(tx, c, 0);
            }
        });
        // TAPE-style labels for conflict attribution (paper §6.3).
        for (i, d) in w.districts.iter().enumerate() {
            d.next_order.set_label(format!("District[{i}].nextOrder"));
            d.order_table.set_label(format!("District[{i}].orderTable"));
            d.new_order_table
                .set_label(format!("District[{i}].newOrderTable"));
            d.ytd.set_label(format!("District[{i}].ytd"));
        }
        w.customer_index.set_label("Warehouse.customerIndex");
        w.history_table.set_label("Warehouse.historyTable");
        w.history_uid.set_label("Warehouse.historyUid");
        w.ytd.set_label("Warehouse.ytd");
        w.stock.set_label("Warehouse.stock");
        w.customers.set_label("Warehouse.customers");
        w
    }

    // ------------------------------------------------------------------
    // The five TPC-C style operations, each run as ONE atomic transaction
    // ------------------------------------------------------------------

    /// Pack a (district, order id) pair into the customer-index value.
    fn pack_order_ref(district: usize, order_id: i64) -> i64 {
        district as i64 * 1_000_000_000 + order_id
    }

    /// Unpack a customer-index value.
    fn unpack_order_ref(code: i64) -> (usize, i64) {
        ((code / 1_000_000_000) as usize, code % 1_000_000_000)
    }

    /// NewOrder: draw an id, price items, decrement stock, insert the order,
    /// and blind-update the customer's latest-order index.
    pub fn new_order(&self, tx: &mut Txn, rng: &mut TxnRng, think: u64) {
        let di = rng.below(DISTRICTS as u64) as usize;
        let d = &self.districts[di];
        let customer = rng.below(DISTRICTS as u64 * CUSTOMERS_PER_DISTRICT);
        let id = d.next_order.next(tx);
        stm::add_cost(think);
        let mut items = Vec::with_capacity(LINES_PER_ORDER as usize);
        let mut total = 0i64;
        for _ in 0..LINES_PER_ORDER {
            let item = rng.below(ITEMS);
            items.push(item);
            total += self.prices[item as usize];
            let qty = self.stock.get(tx, &item).unwrap_or(0);
            self.stock.insert(tx, item, qty - 1);
        }
        stm::add_cost(think);
        let order = Order {
            id,
            customer,
            items,
            total,
            delivered: false,
        };
        d.order_table.insert_new(tx, id, order);
        d.new_order_table.insert_new(tx, id, customer);
        self.customer_index
            .insert_new(tx, customer as i64, Self::pack_order_ref(di, id));
    }

    /// Payment: update YTD accumulators, customer balance, history.
    pub fn payment(&self, tx: &mut Txn, rng: &mut TxnRng, think: u64) {
        let d = &self.districts[rng.below(DISTRICTS as u64) as usize];
        let customer = rng.below(DISTRICTS as u64 * CUSTOMERS_PER_DISTRICT);
        let amount = 100 + rng.below(5_000) as i64;
        self.ytd.add(tx, amount);
        d.ytd.add(tx, amount);
        stm::add_cost(think);
        let bal = self.customers.get(tx, &customer).unwrap_or(0);
        self.customers.insert(tx, customer, bal - amount);
        let hid = self.history_uid.next(tx);
        stm::add_cost(think);
        self.history_table
            .insert_new(tx, hid, History { customer, amount });
    }

    /// OrderStatus: report a customer's most recent order (by-customer via
    /// the index, as in TPC-C).
    pub fn order_status(&self, tx: &mut Txn, rng: &mut TxnRng, think: u64) {
        let customer = rng.below(DISTRICTS as u64 * CUSTOMERS_PER_DISTRICT);
        stm::add_cost(think);
        if let Some(code) = self.customer_index.get(tx, &(customer as i64)) {
            let (di, id) = Self::unpack_order_ref(code);
            if let Some(order) = self.districts[di].order_table.get(tx, &id) {
                // Touch the customer's balance as the status report would.
                let _ = self.customers.get(tx, &order.customer);
                std::hint::black_box(order.total);
            }
        }
    }

    /// Delivery: take the oldest undelivered order, mark it delivered, and
    /// bill the customer.
    pub fn delivery(&self, tx: &mut Txn, rng: &mut TxnRng, think: u64) {
        let d = &self.districts[rng.below(DISTRICTS as u64) as usize];
        stm::add_cost(think);
        if let Some((id, _customer)) = d.new_order_table.first_entry(tx) {
            d.new_order_table.remove(tx, &id);
            if let Some(mut order) = d.order_table.get(tx, &id) {
                order.delivered = true;
                let customer = order.customer;
                let total = order.total;
                d.order_table.update(tx, id, order);
                let bal = self.customers.get(tx, &customer).unwrap_or(0);
                self.customers.insert(tx, customer, bal - total);
            }
        }
    }

    /// StockLevel: count low-stock items among a district's recent orders.
    pub fn stock_level(&self, tx: &mut Txn, rng: &mut TxnRng, think: u64) {
        let d = &self.districts[rng.below(DISTRICTS as u64) as usize];
        let next = d.next_order.get(tx);
        stm::add_cost(think);
        let lo = (next - 8).max(0);
        let recent = d.order_table.range(tx, lo, next);
        let mut low = 0;
        for (_, order) in recent {
            for item in order.items {
                let qty = self.stock.get(tx, &item).unwrap_or(0);
                if qty < self.initial_stock / 2 {
                    low += 1;
                }
            }
        }
        std::hint::black_box(low);
    }

    /// Dispatch one operation by mix roll.
    pub fn run_op(&self, tx: &mut Txn, rng: &mut TxnRng, think: u64) {
        match op_for(rng.next()) {
            OpKind::NewOrder => self.new_order(tx, rng, think),
            OpKind::Payment => self.payment(tx, rng, think),
            OpKind::OrderStatus => self.order_status(tx, rng, think),
            OpKind::Delivery => self.delivery(tx, rng, think),
            OpKind::StockLevel => self.stock_level(tx, rng, think),
        }
    }

    // ------------------------------------------------------------------
    // Consistency checks (used by tests)
    // ------------------------------------------------------------------

    /// Verify cross-structure invariants on the committed state; returns the
    /// first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Warehouse YTD equals the sum of district YTDs.
        let w_ytd = self.ytd.get_committed();
        let d_ytd: i64 = self.districts.iter().map(|d| d.ytd.get_committed()).sum();
        if w_ytd != d_ytd {
            return Err(format!(
                "warehouse ytd {w_ytd} != sum of district ytds {d_ytd}"
            ));
        }
        // Stock decrements match order lines.
        let stock_total: i64 =
            stm::atomic(|tx| self.stock.entries(tx).into_iter().map(|(_, q)| q).sum());
        let lines: i64 = self
            .districts
            .iter()
            .map(|d| -> i64 {
                stm::atomic(|tx| {
                    d.order_table
                        .range(tx, 0, i64::MAX)
                        .iter()
                        .map(|(_, o)| o.items.len() as i64)
                        .sum()
                })
            })
            .sum();
        let expect = self.initial_stock * ITEMS as i64 - lines;
        if stock_total != expect {
            return Err(format!(
                "stock total {stock_total} != initial - order lines {expect}"
            ));
        }
        // Every customer-index entry points at an existing order by that
        // customer.
        for c in 0..(DISTRICTS as u64 * CUSTOMERS_PER_DISTRICT) {
            if let Some(code) = stm::atomic(|tx| self.customer_index.get(tx, &(c as i64))) {
                let (di, id) = Self::unpack_order_ref(code);
                if di >= DISTRICTS {
                    return Err(format!("customer {c}: bad district in index"));
                }
                match stm::atomic(|tx| self.districts[di].order_table.get(tx, &id)) {
                    None => return Err(format!("customer {c}: dangling order index {di}/{id}")),
                    Some(o) if o.customer != c => {
                        return Err(format!(
                            "customer {c}: index points at order of customer {}",
                            o.customer
                        ))
                    }
                    _ => {}
                }
            }
        }
        // Every undelivered entry refers to an existing, undelivered order.
        for (di, d) in self.districts.iter().enumerate() {
            let pending = stm::atomic(|tx| d.new_order_table.range(tx, 0, i64::MAX));
            for (id, _) in pending {
                let order = stm::atomic(|tx| d.order_table.get(tx, &id));
                match order {
                    None => return Err(format!("district {di}: dangling new-order {id}")),
                    Some(o) if o.delivered => {
                        return Err(format!(
                            "district {di}: order {id} delivered but still pending"
                        ))
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

/// The warehouse workload adapted to the simulator's TM engine.
pub struct JbbTmWorkload {
    /// The shared warehouse.
    pub warehouse: TmWarehouse,
    /// Transactions per CPU.
    pub txns_per_cpu: usize,
    /// Workload seed.
    pub seed: u64,
    /// Think cycles inserted inside each operation.
    pub think: u64,
}

impl sim::TmWorkload for JbbTmWorkload {
    fn txn_count(&self, _cpu: usize) -> usize {
        self.txns_per_cpu
    }

    fn run(&self, cpu: usize, seq: usize, tx: &mut stm::Txn) {
        let mut rng = TxnRng::new(self.seed, cpu, seq);
        self.warehouse.run_op(tx, &mut rng, self.think);
    }
}
