//! Tests for the by-customer OrderStatus path (TPC-C style): the customer
//! index always points at a real order of that customer, in every
//! configuration, under simulated contention.

use jbb::{JbbTmWorkload, TmConfig, TmWarehouse};

#[test]
fn customer_index_consistent_across_configs() {
    for config in [TmConfig::Baseline, TmConfig::Open, TmConfig::Transactional] {
        let w = JbbTmWorkload {
            warehouse: TmWarehouse::new(config),
            txns_per_cpu: 60,
            seed: 21,
            think: 100,
        };
        let r = sim::run_tm(8, &w);
        assert_eq!(r.commits, 8 * 60);
        w.warehouse
            .check_invariants()
            .unwrap_or_else(|e| panic!("{config:?}: {e}"));
    }
}

#[test]
fn order_status_reads_latest_order() {
    use jbb::TxnRng;
    let w = TmWarehouse::new(TmConfig::Transactional);
    // Run a few NewOrders for a fixed rng stream, then confirm the index
    // resolves to an existing order for some customer.
    stm::atomic(|tx| {
        let mut rng = TxnRng::new(3, 0, 0);
        for _ in 0..5 {
            w.new_order(tx, &mut rng, 0);
        }
    });
    w.check_invariants().unwrap();
    // At least one customer has an indexed order.
    let mut found = false;
    for c in 0..(jbb::DISTRICTS as u64 * jbb::CUSTOMERS_PER_DISTRICT) {
        let code = stm::atomic(|tx| w.customer_index.get(tx, &(c as i64)));
        if code.is_some() {
            found = true;
            break;
        }
    }
    assert!(found, "NewOrder must populate the customer index");
}
