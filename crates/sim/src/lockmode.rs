//! Lock-mode engine: the "Java" baseline with `synchronized`-style critical
//! sections, modeled as trace replay against per-lock availability.

/// A lock-based workload: bodies execute once (locks never roll back),
/// recording their time structure into a [`LockRecorder`].
pub trait LockWorkload {
    /// Number of transactions CPU `cpu` executes.
    fn txn_count(&self, cpu: usize) -> usize;
    /// Execute transaction `seq` of CPU `cpu`, recording segments.
    fn run(&self, cpu: usize, seq: usize, rec: &mut LockRecorder);
}

#[derive(Debug, Clone, Copy)]
enum Segment {
    /// Lock-free computation.
    Work(u64),
    /// A critical section on the given lock.
    Critical { lock: u64, cycles: u64 },
}

/// Records the time structure of one lock-based transaction body.
pub struct LockRecorder {
    segments: Vec<Segment>,
}

impl LockRecorder {
    fn new() -> Self {
        LockRecorder {
            segments: Vec::new(),
        }
    }

    /// Record lock-free computation.
    pub fn work(&mut self, cycles: u64) {
        self.segments.push(Segment::Work(cycles));
    }

    /// Execute `f` (against real shared state) as a critical section of
    /// `cycles` virtual cycles on `lock`. The closure runs immediately —
    /// host execution is sequential, so no host-level locking is needed;
    /// `lock`/`cycles` drive the virtual-time replay.
    pub fn critical<T>(&mut self, lock: u64, cycles: u64, f: impl FnOnce() -> T) -> T {
        self.segments.push(Segment::Critical { lock, cycles });
        f()
    }
}

/// Outcome of a lock-mode simulation.
#[derive(Debug, Clone, Default)]
pub struct LockResult {
    /// Virtual cycles until the last CPU finishes.
    pub makespan: u64,
    /// Completed transactions.
    pub commits: u64,
    /// Cycles spent blocked waiting for locks, summed over CPUs.
    pub blocked_cycles: u64,
    /// Cycles of actual work (critical + lock-free), summed over CPUs.
    pub busy_cycles: u64,
}

/// Run `workload` on `cpus` virtual CPUs with blocking-lock semantics.
///
/// Bodies are executed (and traced) in a deterministic global order; the
/// scheduler then advances whichever CPU has the smallest local clock,
/// granting locks in virtual-time order (FIFO within equal times by CPU
/// index).
pub fn run_lock(cpus: usize, workload: &dyn LockWorkload) -> LockResult {
    assert!(cpus > 0, "need at least one CPU");
    let mut result = LockResult::default();

    // Phase 1: trace every transaction. Interleave collection round-robin
    // so shared-state evolution roughly matches concurrent execution.
    let mut traces: Vec<Vec<Vec<Segment>>> = (0..cpus).map(|_| Vec::new()).collect();
    let max_txns = (0..cpus).map(|c| workload.txn_count(c)).max().unwrap_or(0);
    for seq in 0..max_txns {
        for (cpu, trace) in traces.iter_mut().enumerate() {
            if seq < workload.txn_count(cpu) {
                let mut rec = LockRecorder::new();
                workload.run(cpu, seq, &mut rec);
                trace.push(rec.segments);
                result.commits += 1;
            }
        }
    }

    // Phase 2: replay. Flatten per-CPU segments; advance the globally
    // smallest CPU clock each step.
    let mut flat: Vec<std::vec::IntoIter<Segment>> = traces
        .into_iter()
        .map(|txns| txns.into_iter().flatten().collect::<Vec<_>>().into_iter())
        .collect();
    let mut clock: Vec<u64> = vec![0; cpus];
    let mut done: Vec<bool> = vec![false; cpus];
    let mut lock_free_at: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();

    // Advance the unfinished CPU with the smallest clock (ties: lowest id).
    while let Some(cpu) = (0..cpus)
        .filter(|&c| !done[c])
        .min_by_key(|&c| (clock[c], c))
    {
        match flat[cpu].next() {
            None => done[cpu] = true,
            Some(Segment::Work(c)) => {
                clock[cpu] += c;
                result.busy_cycles += c;
            }
            Some(Segment::Critical { lock, cycles }) => {
                let free = lock_free_at.get(&lock).copied().unwrap_or(0);
                let start = clock[cpu].max(free);
                result.blocked_cycles += start - clock[cpu];
                clock[cpu] = start + cycles;
                lock_free_at.insert(lock, clock[cpu]);
                result.busy_cycles += cycles;
            }
        }
    }
    result.makespan = clock.into_iter().max().unwrap_or(0);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Mixed {
        txns: usize,
        think: u64,
        crit: u64,
        shared_lock: bool,
    }

    impl LockWorkload for Mixed {
        fn txn_count(&self, _cpu: usize) -> usize {
            self.txns
        }
        fn run(&self, cpu: usize, _seq: usize, rec: &mut LockRecorder) {
            rec.work(self.think);
            let lock = if self.shared_lock { 0 } else { cpu as u64 };
            rec.critical(lock, self.crit, || ());
        }
    }

    #[test]
    fn short_critical_sections_scale() {
        let mk = || Mixed {
            txns: 50,
            think: 1000,
            crit: 10,
            shared_lock: true,
        };
        let r1 = run_lock(1, &mk());
        let r16 = run_lock(16, &mk());
        let speedup = (16.0 * r1.makespan as f64) / r16.makespan as f64;
        assert!(
            speedup > 12.0,
            "short critical sections should scale, got {speedup}"
        );
    }

    #[test]
    fn long_critical_sections_serialize() {
        let mk = || Mixed {
            txns: 50,
            think: 10,
            crit: 1000,
            shared_lock: true,
        };
        let r1 = run_lock(1, &mk());
        let r16 = run_lock(16, &mk());
        let speedup = (16.0 * r1.makespan as f64) / r16.makespan as f64;
        assert!(
            speedup < 1.5,
            "one big lock must serialize everything, got speedup {speedup}"
        );
        assert!(r16.blocked_cycles > 0);
    }

    #[test]
    fn private_locks_scale_perfectly() {
        let mk = || Mixed {
            txns: 20,
            think: 100,
            crit: 100,
            shared_lock: false,
        };
        let r1 = run_lock(1, &mk());
        let r8 = run_lock(8, &mk());
        let speedup = (8.0 * r1.makespan as f64) / r8.makespan as f64;
        assert!((speedup - 8.0).abs() < 0.2, "got {speedup}");
        assert_eq!(run_lock(8, &mk()).blocked_cycles, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || Mixed {
            txns: 13,
            think: 37,
            crit: 91,
            shared_lock: true,
        };
        let a = run_lock(6, &mk());
        let b = run_lock(6, &mk());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.blocked_cycles, b.blocked_cycles);
    }
}
