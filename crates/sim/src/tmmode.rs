//! TCC-mode engine: optimistic transactions with commit-time violation.

use crate::{ABORT_PENALTY, TXN_OVERHEAD};
use std::cmp::Reverse;
#[allow(unused_imports)]
use std::collections::HashMap;
use std::collections::{BinaryHeap, HashSet};
use stm::{AbortCause, PreparedTxn, VarId};

/// A transactional workload driven by the TM engine.
///
/// Bodies must be **re-executable** (they re-run after violations) and
/// **deterministic given host execution order** — shared state may evolve
/// between attempts, but no wall-clock or host-thread dependence.
pub trait TmWorkload {
    /// Number of transactions CPU `cpu` executes.
    fn txn_count(&self, cpu: usize) -> usize;
    /// Execute transaction `seq` of CPU `cpu`. Charge think time via
    /// [`crate::think`]; `TVar` accesses are charged automatically.
    fn run(&self, cpu: usize, seq: usize, tx: &mut stm::Txn);
}

/// Outcome of a TM-mode simulation.
#[derive(Debug, Clone, Default)]
pub struct TmResult {
    /// Virtual cycles from start until the last commit.
    pub makespan: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Violations (aborted attempts), by cause.
    pub violations_memory: u64,
    /// Violations caused by program-directed abort (semantic conflicts).
    pub violations_semantic: u64,
    /// Silent replays: the conflicting read would not yet have happened at
    /// the committer's broadcast, so real TCC hardware would simply have the
    /// reader observe the new value when it got there. The simulator re-runs
    /// the body for functional consistency without charging lost time.
    pub replays: u64,
    /// Self-aborts: the body aborted itself (pessimistic conflict detection
    /// or explicit retry); the CPU waits for the next commit before trying
    /// again.
    pub self_aborts: u64,
    /// Virtual cycles CPUs spent waiting to retry after a self-abort.
    pub waiting_cycles: u64,
    /// Virtual cycles of discarded (violated) execution.
    pub lost_cycles: u64,
    /// Virtual cycles of committed execution.
    pub useful_cycles: u64,
    /// Lost cycles attributed to the variable whose read/write overlap
    /// caused each memory violation (TAPE-style conflict profiling,
    /// paper §6.3). Label vars with [`stm::label_var`] to name them.
    pub conflict_sources: std::collections::HashMap<VarId, u64>,
}

impl TmResult {
    /// The top-`n` conflict sources as `(label-or-id, lost cycles)`.
    pub fn top_conflict_sources(&self, n: usize) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .conflict_sources
            .iter()
            .map(|(id, lost)| {
                let name = stm::var_label(*id).unwrap_or_else(|| format!("var#{id}"));
                (name, *lost)
            })
            .collect();
        // Labels may be shared by several vars (e.g. all districts' order
        // tables): aggregate.
        let mut agg: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        for (name, lost) in v.drain(..) {
            *agg.entry(name).or_default() += lost;
        }
        let mut out: Vec<(String, u64)> = agg.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(n);
        out
    }
}

struct InFlight {
    cpu: usize,
    seq: usize,
    attempt: u32,
    start: u64,
    commit_at: u64,
    prepared: PreparedTxn,
    /// Read footprint with body-cycle offsets: the read of var `v` occurs at
    /// virtual time `start + offset`.
    reads: Vec<(VarId, u64)>,
    writes: Vec<VarId>,
}

/// Run `workload` on `cpus` virtual CPUs under TCC semantics; see the crate
/// docs for the model.
pub fn run_tm(cpus: usize, workload: &dyn TmWorkload) -> TmResult {
    assert!(cpus > 0, "need at least one CPU");
    let mut result = TmResult::default();
    // Commit events ordered by (time, cpu) for determinism.
    let mut events: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut slots: Vec<Option<InFlight>> = Vec::with_capacity(cpus);
    let mut next_seq: Vec<usize> = vec![0; cpus];

    // CPUs whose last speculation self-aborted (pessimistic lock conflict,
    // explicit retry): they wait for the next commit event, which may
    // release whatever they were waiting on.
    let mut blocked: Vec<(usize, usize, u32, u64)> = Vec::new();

    let speculate = |cpu: usize, seq: usize, attempt: u32, now: u64| -> Result<InFlight, u64> {
        stm::reset_cost();
        match stm::speculate(|tx| workload.run(cpu, seq, tx), attempt) {
            Ok((_, prepared)) => {
                let cost = stm::take_cost() + TXN_OVERHEAD;
                let reads = prepared.read_offsets();
                let writes = prepared.write_set();
                Ok(InFlight {
                    cpu,
                    seq,
                    attempt,
                    start: now,
                    commit_at: now + cost,
                    prepared,
                    reads,
                    writes,
                })
            }
            Err(_cause) => Err(stm::take_cost()),
        }
    };

    for cpu in 0..cpus {
        slots.push(None);
        if workload.txn_count(cpu) > 0 {
            next_seq[cpu] = 1;
            match speculate(cpu, 0, 0, 0) {
                Ok(inf) => {
                    events.push(Reverse((inf.commit_at, cpu)));
                    slots[cpu] = Some(inf);
                }
                Err(spent) => {
                    result.self_aborts += 1;
                    blocked.push((cpu, 0, 1, spent));
                }
            }
        }
    }

    while let Some(Reverse((t, cpu))) = events.pop() {
        // The event may be stale (the txn was violated and rescheduled).
        let Some(inf) = slots[cpu].take() else {
            continue;
        };
        if inf.commit_at != t {
            slots[cpu] = Some(inf);
            continue;
        }
        // Commit (TCC: committer always wins). The commit phase — applying
        // redo logs and running commit handlers — occupies the CPU too, so
        // its counted cost delays this CPU's next transaction.
        let writes: HashSet<VarId> = inf.writes.iter().copied().collect();
        stm::reset_cost();
        inf.prepared.commit();
        let commit_cost = stm::take_cost();
        let cpu_free_at = t + commit_cost;
        result.commits += 1;
        result.useful_cycles += cpu_free_at - inf.start;
        result.makespan = result.makespan.max(cpu_free_at);

        // Violate in-flight readers of our writes and semantically doomed
        // transactions (our commit handlers just ran and posted dooms). A
        // read counts as performed only if its virtual time `start + offset`
        // precedes this commit broadcast — later reads would simply have
        // seen the new value on real hardware, so the body is replayed
        // against the new state without any time penalty.
        for other in 0..cpus {
            if other == cpu {
                continue;
            }
            let Some(u) = slots[other].take() else {
                continue;
            };
            let touches = u.reads.iter().any(|(v, _)| writes.contains(v));
            let performed_conflict = u
                .reads
                .iter()
                .any(|(v, off)| writes.contains(v) && u.start + off <= t);
            let semantic_conflict = u.prepared.handle().is_doomed();
            if performed_conflict || semantic_conflict {
                let lost = t.saturating_sub(u.start) + ABORT_PENALTY;
                if performed_conflict {
                    result.violations_memory += 1;
                    // Attribute the lost work to the conflicting var(s).
                    for (v, off) in &u.reads {
                        if writes.contains(v) && u.start + off <= t {
                            *result.conflict_sources.entry(*v).or_default() += lost;
                        }
                    }
                } else {
                    result.violations_semantic += 1;
                }
                result.lost_cycles += lost;
                let (ucpu, useq, uattempt) = (u.cpu, u.seq, u.attempt);
                u.prepared.abort(if performed_conflict {
                    AbortCause::ReadInvalid
                } else {
                    AbortCause::Doomed
                });
                match speculate(ucpu, useq, uattempt + 1, t + ABORT_PENALTY) {
                    Ok(fresh) => {
                        events.push(Reverse((fresh.commit_at, ucpu)));
                        slots[ucpu] = Some(fresh);
                    }
                    Err(spent) => {
                        result.self_aborts += 1;
                        blocked.push((ucpu, useq, uattempt + 2, t + spent));
                    }
                }
            } else if touches {
                // Functional replay: keep the virtual timeline, recompute
                // the results against the committed state.
                result.replays += 1;
                let (ucpu, useq, uattempt, ustart) = (u.cpu, u.seq, u.attempt, u.start);
                u.prepared.abort(AbortCause::ReadInvalid);
                match speculate(ucpu, useq, uattempt, ustart) {
                    Ok(mut fresh) => {
                        // The prefix up to the conflicting access is retained
                        // on real hardware; keep the later completion time
                        // but never commit in the past.
                        fresh.commit_at = fresh.commit_at.max(t + 1);
                        events.push(Reverse((fresh.commit_at, ucpu)));
                        slots[ucpu] = Some(fresh);
                    }
                    Err(spent) => {
                        result.self_aborts += 1;
                        blocked.push((ucpu, useq, uattempt + 1, t + spent));
                    }
                }
            } else {
                slots[other] = Some(u);
            }
        }

        // Start this CPU's next transaction once the commit phase is done.
        let seq = next_seq[cpu];
        if seq < workload.txn_count(cpu) {
            next_seq[cpu] = seq + 1;
            match speculate(cpu, seq, 0, cpu_free_at) {
                Ok(fresh) => {
                    events.push(Reverse((fresh.commit_at, cpu)));
                    slots[cpu] = Some(fresh);
                }
                Err(spent) => {
                    result.self_aborts += 1;
                    blocked.push((cpu, seq, 1, t + spent));
                }
            }
        }

        // A commit may have released what blocked CPUs were waiting on:
        // give every blocked CPU another chance now.
        let waiting = std::mem::take(&mut blocked);
        for (bcpu, bseq, battempt, since) in waiting {
            result.waiting_cycles += t.saturating_sub(since);
            match speculate(bcpu, bseq, battempt, t) {
                Ok(fresh) => {
                    events.push(Reverse((fresh.commit_at, bcpu)));
                    slots[bcpu] = Some(fresh);
                }
                Err(_) => {
                    result.self_aborts += 1;
                    blocked.push((bcpu, bseq, battempt + 1, t));
                }
            }
        }
    }

    assert!(
        blocked.is_empty(),
        "simulation ended with permanently blocked CPUs (lock leak?)"
    );

    debug_assert!(slots.iter().all(Option::is_none), "in-flight txns leaked");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::TVar;

    struct CounterWorkload {
        counter: TVar<u64>,
        txns: usize,
        think: u64,
    }

    impl TmWorkload for CounterWorkload {
        fn txn_count(&self, _cpu: usize) -> usize {
            self.txns
        }
        fn run(&self, _cpu: usize, _seq: usize, tx: &mut stm::Txn) {
            crate::think(self.think);
            let v = self.counter.read(tx);
            self.counter.write(tx, v + 1);
        }
    }

    #[test]
    fn single_cpu_commits_everything_without_violations() {
        let w = CounterWorkload {
            counter: TVar::new(0),
            txns: 20,
            think: 100,
        };
        let r = run_tm(1, &w);
        assert_eq!(r.commits, 20);
        assert_eq!(r.violations_memory + r.violations_semantic, 0);
        assert_eq!(w.counter.read_committed(), 20);
    }

    #[test]
    fn contended_counter_serializes_but_stays_correct() {
        let w = CounterWorkload {
            counter: TVar::new(0),
            txns: 10,
            think: 100,
        };
        let r = run_tm(8, &w);
        assert_eq!(r.commits, 80);
        assert!(
            r.violations_memory > 0,
            "all CPUs read/write one counter: violations expected"
        );
        assert_eq!(w.counter.read_committed(), 80, "lost update in simulator");
    }

    #[test]
    fn disjoint_work_scales_linearly() {
        struct Disjoint {
            counters: Vec<TVar<u64>>,
            txns: usize,
        }
        impl TmWorkload for Disjoint {
            fn txn_count(&self, _cpu: usize) -> usize {
                self.txns
            }
            fn run(&self, cpu: usize, _seq: usize, tx: &mut stm::Txn) {
                crate::think(1000);
                let c = &self.counters[cpu];
                let v = c.read(tx);
                c.write(tx, v + 1);
            }
        }
        let mk = |n: usize| Disjoint {
            counters: (0..n).map(|_| TVar::new(0)).collect(),
            txns: 16,
        };
        let w1 = mk(1);
        let r1 = run_tm(1, &w1);
        let w8 = mk(8);
        let r8 = run_tm(8, &w8);
        assert_eq!(r8.violations_memory + r8.violations_semantic, 0);
        // Same per-CPU txn count: 8 CPUs do 8x the work in the same time.
        let speedup = (8.0 * r1.makespan as f64) / r8.makespan as f64;
        assert!(speedup > 7.5, "disjoint speedup only {speedup}");
    }

    #[test]
    fn deterministic_across_runs() {
        // Fresh state per run so results must match exactly.
        let run = || {
            let w = CounterWorkload {
                counter: TVar::new(0),
                txns: 12,
                think: 77,
            };
            let r = run_tm(4, &w);
            (r.makespan, r.commits, r.violations_memory)
        };
        assert_eq!(run(), run());
    }
}
