//! # sim — a deterministic transaction-level chip-multiprocessor simulator
//!
//! The paper evaluates on an execution-driven simulator of a PowerPC CMP
//! implementing the TCC continuous-transaction architecture (1–32 CPUs),
//! with MESI snoopy coherence for the Java lock baselines. This crate is the
//! transaction-level analog: it reproduces the quantity the paper's figures
//! plot — **speedup over the 1-CPU lock baseline, as conflict-induced lost
//! work and lock contention grow with CPU count** — without simulating
//! individual instructions.
//!
//! Two engines share a virtual-cycle clock:
//!
//! * [`run_tm`] — **TCC mode.** Each virtual CPU executes a sequence of
//!   transactions. A transaction body is *actually executed* against the
//!   real `stm` state ([`stm::speculate`]), accruing virtual cycles for
//!   every `TVar` access plus explicit [`think`] work; its commit is
//!   scheduled at `start + cost`. Commits are processed in virtual-time
//!   order; a committing transaction always succeeds (TCC: the committer
//!   broadcasts) and **violates** every in-flight transaction whose
//!   memory-level read set intersects its write set *or* whose handle its
//!   commit handlers doomed (semantic conflicts). Violated transactions
//!   lose the cycles they had accrued and re-execute. Because every commit
//!   eagerly violates conflicting readers, a transaction reaching its own
//!   commit event is guaranteed valid — exactly the TCC invariant.
//! * [`run_lock`] — **lock mode.** Transaction bodies run against
//!   lock-based structures while recording a trace of `Work` and
//!   `Critical(lock, cycles)` segments; a greedy smallest-time-first
//!   scheduler then replays the traces against per-lock availability,
//!   modeling blocking.
//!
//! Both engines are fully deterministic: a fixed interleaving policy, no
//! wall-clock, no host-thread nondeterminism — so every figure regenerates
//! bit-identically.

#![warn(missing_docs)]

mod lockmode;
mod tmmode;

pub use lockmode::{run_lock, LockRecorder, LockResult, LockWorkload};
pub use tmmode::{run_tm, TmResult, TmWorkload};

/// Charge `cycles` of "surrounding computation" to the current transaction
/// body (the paper's long-transaction filler between collection operations).
pub fn think(cycles: u64) {
    stm::add_cost(cycles);
}

/// Fixed per-transaction overhead in cycles (begin/commit machinery).
pub const TXN_OVERHEAD: u64 = 40;

/// Cycles lost to rollback bookkeeping when a transaction is violated, in
/// addition to the discarded execution time.
pub const ABORT_PENALTY: u64 = 40;
