//! Cross-cutting simulator tests: the two engines' models behave sanely and
//! consistently with the STM semantics they drive.

use std::ops::Bound;
use std::sync::atomic::{AtomicUsize, Ordering};
use stm::TVar;
use txcollections::{Channel, TransactionalMap, TransactionalQueue, TransactionalSortedMap};

struct MapWorkload {
    map: TransactionalMap<u64, u64>,
    txns: usize,
}

impl sim::TmWorkload for MapWorkload {
    fn txn_count(&self, _cpu: usize) -> usize {
        self.txns
    }
    fn run(&self, cpu: usize, seq: usize, tx: &mut stm::Txn) {
        sim::think(500);
        let k = (cpu * 1_000 + seq) as u64;
        self.map.put_discard(tx, k, k);
    }
}

#[test]
fn wrapped_map_keeps_all_data_across_simulated_cpus() {
    let w = MapWorkload {
        map: TransactionalMap::with_capacity(8192),
        txns: 100,
    };
    let r = sim::run_tm(16, &w);
    assert_eq!(r.commits, 1600);
    assert_eq!(
        r.violations_memory + r.violations_semantic,
        0,
        "disjoint blind puts must not conflict"
    );
    assert_eq!(stm::atomic(|tx| w.map.size(tx)), 1600);
}

struct SortedScanWorkload {
    map: TransactionalSortedMap<u64, u64>,
    txns: usize,
}

impl sim::TmWorkload for SortedScanWorkload {
    fn txn_count(&self, _cpu: usize) -> usize {
        self.txns
    }
    fn run(&self, cpu: usize, seq: usize, tx: &mut stm::Txn) {
        sim::think(500);
        if cpu.is_multiple_of(2) {
            // Writers append at the end.
            let k = (cpu * 10_000 + seq) as u64 + 1_000_000;
            self.map.put_discard(tx, k, k);
        } else {
            // Readers scan a fixed low range: never overlaps the appends.
            let r = self
                .map
                .range_entries(tx, Bound::Included(0), Bound::Excluded(100));
            std::hint::black_box(r);
        }
    }
}

#[test]
fn non_overlapping_ranges_and_appends_coexist() {
    let w = SortedScanWorkload {
        map: TransactionalSortedMap::new(),
        txns: 60,
    };
    stm::atomic(|tx| {
        for k in 0..50u64 {
            w.map.put_discard(tx, k, k);
        }
    });
    let r = sim::run_tm(8, &w);
    assert_eq!(r.commits, 480);
    assert_eq!(
        r.violations_semantic, 0,
        "range [0,100) never overlaps appended keys >= 1M"
    );
}

struct QueuePipeline {
    queue: TransactionalQueue<u64>,
    txns: usize,
    produced: std::sync::Arc<AtomicUsize>,
    consumed: std::sync::Arc<AtomicUsize>,
}

impl sim::TmWorkload for QueuePipeline {
    fn txn_count(&self, _cpu: usize) -> usize {
        self.txns
    }
    fn run(&self, cpu: usize, _seq: usize, tx: &mut stm::Txn) {
        sim::think(300);
        if cpu.is_multiple_of(2) {
            self.queue.put(tx, cpu as u64);
            // Count only on the attempt that commits: commit handlers run
            // exactly once per committed transaction.
            let p = self.produced.clone();
            tx.on_commit_top(move |_| {
                p.fetch_add(1, Ordering::Relaxed);
            });
        } else if self.queue.poll(tx).is_some() {
            let c = self.consumed.clone();
            tx.on_commit_top(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
    }
}

#[test]
fn queue_pipeline_conserves_items_in_sim() {
    let w = QueuePipeline {
        queue: TransactionalQueue::new(),
        txns: 80,
        produced: std::sync::Arc::new(AtomicUsize::new(0)),
        consumed: std::sync::Arc::new(AtomicUsize::new(0)),
    };
    let r = sim::run_tm(8, &w);
    assert_eq!(r.commits, 8 * 80);
    let produced = w.produced.load(Ordering::Relaxed);
    let consumed = w.consumed.load(Ordering::Relaxed);
    let left = stm::atomic(|tx| {
        let mut n = 0;
        while w.queue.poll(tx).is_some() {
            n += 1;
        }
        n
    });
    assert_eq!(
        produced,
        consumed + left,
        "queue items not conserved under simulation"
    );
}

/// The timing model: a conflicting read performed EARLY in a long body must
/// be violated; the same conflict would be a silent replay if it virtually
/// happened after the writer's commit.
#[test]
fn early_reads_are_violated_late_reads_replay() {
    struct Early {
        hot: TVar<u64>,
        txns: usize,
    }
    impl sim::TmWorkload for Early {
        fn txn_count(&self, cpu: usize) -> usize {
            if cpu == 0 {
                self.txns
            } else {
                self.txns * 4 // writer spins faster
            }
        }
        fn run(&self, cpu: usize, _seq: usize, tx: &mut stm::Txn) {
            if cpu == 0 {
                // Reader: read FIRST, then a long think.
                let _ = self.hot.read(tx);
                sim::think(50_000);
            } else {
                sim::think(500);
                let v = self.hot.read(tx);
                self.hot.write(tx, v + 1);
            }
        }
    }
    struct Late {
        hot: TVar<u64>,
        txns: usize,
    }
    impl sim::TmWorkload for Late {
        fn txn_count(&self, cpu: usize) -> usize {
            if cpu == 0 {
                self.txns
            } else {
                self.txns * 4
            }
        }
        fn run(&self, cpu: usize, _seq: usize, tx: &mut stm::Txn) {
            if cpu == 0 {
                // Reader: long think FIRST, read at the very end.
                sim::think(50_000);
                let _ = self.hot.read(tx);
            } else {
                sim::think(500);
                let v = self.hot.read(tx);
                self.hot.write(tx, v + 1);
            }
        }
    }
    let early = Early {
        hot: TVar::new(0),
        txns: 30,
    };
    let re = sim::run_tm(2, &early);
    let late = Late {
        hot: TVar::new(0),
        txns: 30,
    };
    let rl = sim::run_tm(2, &late);
    // Early reads sit in the conflict window for the whole body: nearly
    // every writer commit during the overlap violates the reader. Late
    // reads are exposed for only the final instants, so almost all writer
    // commits become silent replays instead.
    assert!(
        re.violations_memory > 10 * rl.violations_memory.max(1),
        "early reads must be violated far more often than late reads \
         (early {} vs late {})",
        re.violations_memory,
        rl.violations_memory
    );
    assert!(rl.replays > 0, "late reads should be silent replays");
}
