//! Shape-regression tests for the paper's figures: scaled-down versions of
//! the fig1–fig4 sweeps asserting the qualitative results that constitute
//! the reproduction — who wins, by roughly what factor, where curves
//! flatten. If a change to the STM, the collections, or the simulator breaks
//! a paper-level conclusion, these fail.

use bench::testmap::{
    LockMapFlavor, TestCompoundLock, TestCompoundTm, TestMapLock, TestMapTm, TmMapFlavor,
};
use bench::throughput;
use jbb::{JbbLockWorkload, JbbTmWorkload, LockWarehouse, TmConfig, TmWarehouse, DEFAULT_THINK};
use txcollections::{TransactionalMap, TransactionalSortedMap};
use txstruct::{LockHashMap, LockTreeMap, TxHashMap, TxTreeMap};

const TXNS: usize = 150;
const SEED: u64 = 0x5EED_0001;

fn tm_throughput(map: TmMapFlavor, cpus: usize) -> f64 {
    let w = TestMapTm {
        map,
        txns_per_cpu: TXNS,
        seed: SEED,
    };
    w.map.preload();
    let r = sim::run_tm(cpus, &w);
    throughput(r.commits, r.makespan)
}

fn lock_throughput(map: LockMapFlavor, cpus: usize) -> f64 {
    let w = TestMapLock {
        map,
        txns_per_cpu: TXNS,
        seed: SEED,
    };
    w.map.preload();
    let r = sim::run_lock(cpus, &w);
    throughput(r.commits, r.makespan)
}

#[test]
fn figure1_shape() {
    let java1 = lock_throughput(LockMapFlavor::Hash(LockHashMap::new()), 1);
    let java16 = lock_throughput(LockMapFlavor::Hash(LockHashMap::new()), 16);
    let bare16 = tm_throughput(TmMapFlavor::BareHash(TxHashMap::with_capacity(8192)), 16);
    let wrapped16 = tm_throughput(
        TmMapFlavor::WrappedHash(TransactionalMap::with_capacity(8192)),
        16,
    );
    let java_s = java16 / java1;
    let bare_s = bare16 / java1;
    let wrapped_s = wrapped16 / java1;
    // Java scales nearly linearly.
    assert!(
        java_s > 13.0,
        "Java HashMap speedup at 16 CPUs: {java_s:.1}"
    );
    // The bare map plateaus far below.
    assert!(
        bare_s < java_s * 0.7,
        "bare TxHashMap should plateau (bare {bare_s:.1} vs java {java_s:.1})"
    );
    // The wrapper recovers Java-level scaling.
    assert!(
        wrapped_s > java_s * 0.85,
        "TransactionalMap should recover scaling (wrapped {wrapped_s:.1} vs java {java_s:.1})"
    );
}

#[test]
fn figure2_shape() {
    let java1 = lock_throughput(LockMapFlavor::Tree(LockTreeMap::new()), 1);
    let java16 = lock_throughput(LockMapFlavor::Tree(LockTreeMap::new()), 16);
    let bare16 = tm_throughput(TmMapFlavor::BareTree(TxTreeMap::new()), 16);
    let wrapped16 = tm_throughput(TmMapFlavor::WrappedTree(TransactionalSortedMap::new()), 16);
    let java_s = java16 / java1;
    let bare_s = bare16 / java1;
    let wrapped_s = wrapped16 / java1;
    assert!(
        java_s > 13.0,
        "Java TreeMap speedup at 16 CPUs: {java_s:.1}"
    );
    assert!(
        bare_s < java_s * 0.6,
        "bare TxTreeMap should fail to scale (bare {bare_s:.1} vs java {java_s:.1})"
    );
    assert!(
        wrapped_s > java_s * 0.8,
        "TransactionalSortedMap should recover scaling \
         (wrapped {wrapped_s:.1} vs java {java_s:.1})"
    );
}

#[test]
fn figure3_shape() {
    // Compound operations: coarse-lock Java is pinned near 2 while the
    // wrapper scales.
    let java1 = {
        let w = TestCompoundLock {
            map: LockMapFlavor::Hash(LockHashMap::new()),
            txns_per_cpu: TXNS,
            seed: SEED,
        };
        w.map.preload();
        let r = sim::run_lock(1, &w);
        throughput(r.commits, r.makespan)
    };
    let java16 = {
        let w = TestCompoundLock {
            map: LockMapFlavor::Hash(LockHashMap::new()),
            txns_per_cpu: TXNS,
            seed: SEED,
        };
        w.map.preload();
        let r = sim::run_lock(16, &w);
        throughput(r.commits, r.makespan)
    };
    let wrapped16 = {
        let w = TestCompoundTm {
            map: TmMapFlavor::WrappedHash(TransactionalMap::with_capacity(8192)),
            txns_per_cpu: TXNS,
            seed: SEED,
        };
        w.map.preload();
        let r = sim::run_tm(16, &w);
        throughput(r.commits, r.makespan)
    };
    let java_s = java16 / java1;
    let wrapped_s = wrapped16 / java1;
    assert!(
        java_s < 3.0,
        "coarse lock held across computation must serialize (got {java_s:.1})"
    );
    assert!(
        wrapped_s > 12.0,
        "composed transactions should scale (got {wrapped_s:.1})"
    );
}

#[test]
fn figure4_shape() {
    let cpus = 16;
    let txns = 48;
    let java1 = {
        let w = JbbLockWorkload {
            warehouse: LockWarehouse::new(),
            txns_per_cpu: txns,
            seed: SEED,
            think: DEFAULT_THINK,
        };
        let r = sim::run_lock(1, &w);
        throughput(r.commits, r.makespan)
    };
    let java = {
        let w = JbbLockWorkload {
            warehouse: LockWarehouse::new(),
            txns_per_cpu: txns,
            seed: SEED,
            think: DEFAULT_THINK,
        };
        let r = sim::run_lock(cpus, &w);
        throughput(r.commits, r.makespan) / java1
    };
    let tm = |config| {
        let w = JbbTmWorkload {
            warehouse: TmWarehouse::new(config),
            txns_per_cpu: txns,
            seed: SEED,
            think: DEFAULT_THINK,
        };
        let r = sim::run_tm(cpus, &w);
        w.warehouse.check_invariants().unwrap();
        throughput(r.commits, r.makespan) / java1
    };
    let baseline = tm(TmConfig::Baseline);
    let open = tm(TmConfig::Open);
    let transactional = tm(TmConfig::Transactional);
    // The paper's ordering at high CPU counts.
    assert!(
        baseline < open,
        "Open must beat Baseline (baseline {baseline:.2}, open {open:.2})"
    );
    assert!(
        open < transactional,
        "Transactional must beat Open (open {open:.2}, transactional {transactional:.2})"
    );
    assert!(
        transactional > java,
        "Transactional must beat single-warehouse Java \
         (java {java:.2}, transactional {transactional:.2})"
    );
    // Baseline is crippled by whole-transaction conflicts.
    assert!(
        baseline < java,
        "Baseline should trail Java (java {java:.2}, baseline {baseline:.2})"
    );
}
