//! Ablation (paper §5.1, "Alternative semantic locks"): `isEmpty` as a
//! derivative of `size` versus as a primitive with its own zero-crossing
//! lock.
//!
//! The paper's example: transactions running
//! `if (!map.isEmpty()) map.put(unique_key, v)` *should* commute, but the
//! derived isEmpty takes the full size lock and gets doomed by every
//! committed insert. The primitive variant only conflicts when the size
//! crosses zero.

use jbb::TxnRng;
use sim::{run_tm, TmWorkload};
use stm::Txn;
use txcollections::TransactionalMap;

const CPUS: usize = 16;
const TXNS: usize = 200;
const THINK: u64 = 20_000;

struct Workload {
    map: TransactionalMap<u64, u64>,
    primitive: bool,
}

impl TmWorkload for Workload {
    fn txn_count(&self, _cpu: usize) -> usize {
        TXNS
    }
    fn run(&self, cpu: usize, seq: usize, tx: &mut Txn) {
        let mut rng = TxnRng::new(7, cpu, seq);
        sim::think(THINK / 2);
        let empty = if self.primitive {
            self.map.is_empty_primitive(tx)
        } else {
            self.map.is_empty(tx)
        };
        if !empty {
            // Unique key per (cpu, seq): the puts themselves never conflict.
            let key = (cpu as u64) << 32 | (seq as u64) << 8 | rng.below(256);
            self.map.put_discard(tx, key, 1);
        }
        sim::think(THINK / 2);
    }
}

fn run(primitive: bool) -> (u64, u64, u64) {
    let map = TransactionalMap::with_capacity(65536);
    stm::atomic(|tx| {
        map.put_discard(tx, u64::MAX, 0); // never empty during the run
    });
    let w = Workload { map, primitive };
    let r = run_tm(CPUS, &w);
    (
        r.commits,
        r.violations_memory + r.violations_semantic,
        r.makespan,
    )
}

fn main() {
    println!("Ablation: derived isEmpty (size lock) vs primitive isEmpty (zero-crossing lock)");
    println!("workload: if !map.is_empty() {{ put(unique_key) }}  — 16 CPUs");
    let (c, v, m) = run(false);
    println!(
        "  derived  : {c} commits, {v} violations, makespan {m} cycles ({:.3} viol/txn)",
        v as f64 / c as f64
    );
    let (c, v, m) = run(true);
    println!(
        "  primitive: {c} commits, {v} violations, makespan {m} cycles ({:.3} viol/txn)",
        v as f64 / c as f64
    );
    println!("\nthe primitive variant eliminates the false size-lock conflicts (§5.1).");
}
