//! Ablation (paper §3.2): flat scanned range-lock list vs interval tree.
//!
//! "We chose a simple Set to store the range locks, meaning updates to a key
//! must enumerate the set to find matching ranges for conflicts. An
//! alternative would have been to use an interval tree, but the extra
//! complexity and potential overhead seemed unnecessary for the common
//! case." This harness measures both sides of that call: commit latency of
//! a writer while N range locks are outstanding.

use std::hint::black_box;
use std::ops::Bound;
use std::time::Instant;
use stm::AbortCause;
use txcollections::{RangeIndexKind, TransactionalSortedMap};
use txstruct::TxTreeMap;

fn commit_latency(kind: RangeIndexKind, outstanding: usize) -> f64 {
    let map: TransactionalSortedMap<u64, u64> =
        TransactionalSortedMap::wrap_with_range_index(TxTreeMap::new(), kind);
    stm::atomic(|tx| {
        for k in 0..2_000u64 {
            map.put_discard(tx, k * 10, k);
        }
    });
    // Park `outstanding` transactions each holding one narrow range lock.
    let mut parked = Vec::with_capacity(outstanding);
    for i in 0..outstanding as u64 {
        let m = map.clone();
        let (_, t) = stm::speculate(
            move |tx| {
                let lo = (i % 1_900) * 10 + 1; // odd offsets: never hit below
                black_box(m.range_entries(tx, Bound::Included(lo), Bound::Included(lo + 5)));
            },
            0,
        )
        .unwrap();
        parked.push(t);
    }
    // Measure: commit writers touching keys outside every parked range
    // (pure index-scan cost, no dooms). Best of several rounds to shrug off
    // scheduler noise.
    let iters = 500u64;
    let mut best = f64::INFINITY;
    for round in 0..7u64 {
        let start = Instant::now();
        for i in 0..iters {
            stm::atomic(|tx| {
                map.put_discard(tx, 1_000_000 + round * iters + i, i);
            });
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    for t in parked {
        t.abort(AbortCause::Explicit);
    }
    best
}

fn main() {
    // Warm up allocator/code paths so the first measured cell is clean.
    let _ = commit_latency(RangeIndexKind::FlatScan, 10);
    let _ = commit_latency(RangeIndexKind::IntervalTree, 10);

    println!("Ablation: range-lock index — flat scan vs interval tree");
    println!("(writer commit latency in ns while N range locks are outstanding)");
    println!(
        "{:>12} {:>14} {:>14} {:>8}",
        "N ranges", "flat scan", "interval tree", "ratio"
    );
    for n in [0usize, 10, 100, 1_000, 5_000] {
        let flat = commit_latency(RangeIndexKind::FlatScan, n);
        let tree = commit_latency(RangeIndexKind::IntervalTree, n);
        println!("{n:>12} {flat:>12.0}ns {tree:>12.0}ns {:>8.2}", flat / tree);
    }
    println!(
        "\nthe paper's flat set wins for small N (the common case it argues);\n\
         the interval tree takes over as concurrent iterators accumulate."
    );
}
