//! Commit-path scaling microbench: disjoint-write transactions at 1/2/4/8
//! threads, sharded commit (per-TVar versioned locks, no global serialization
//! for handler-free transactions) versus a reconstructed serialized baseline
//! (a process-global mutex around every transaction — the critical section
//! the removed global commit mutex imposed; the transaction bodies here are
//! a single read-modify-write, so body time is commit-dominated).
//!
//! Run via `scripts/bench.sh`, which captures the JSON report as
//! `BENCH_PR2.json`. The report includes the host CPU count: on a single
//! hardware thread the sharded path shows up as avoided lock handoffs rather
//! than true parallel commits, so interpret `throughput_ratio` together with
//! `cpus`.

use parking_lot::Mutex;
use std::time::Instant;
use stm::{atomic, global_stats, TVar};

/// Stand-in for the retired global commit mutex.
static SERIAL: Mutex<()> = Mutex::new(());

const TXNS_PER_THREAD: u64 = 2000;
const SAMPLES: usize = 3;

/// Run `threads` workers, each committing [`TXNS_PER_THREAD`] disjoint
/// single-var read-modify-writes; returns ns/txn (best of [`SAMPLES`]).
fn run(threads: usize, serialized: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let vars: Vec<TVar<u64>> = (0..threads).map(|_| TVar::new(0)).collect();
        let start = Instant::now();
        std::thread::scope(|s| {
            for v in &vars {
                s.spawn(move || {
                    for _ in 0..TXNS_PER_THREAD {
                        let _serial_section = serialized.then(|| SERIAL.lock());
                        atomic(|tx| {
                            let x = v.read(tx);
                            v.write(tx, x + 1);
                        });
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_nanos() as f64;
        for v in &vars {
            assert_eq!(v.read_committed(), TXNS_PER_THREAD, "lost update");
        }
        best = best.min(elapsed / (threads as u64 * TXNS_PER_THREAD) as f64);
    }
    best
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm up both paths (first-touch allocation, lazy statics).
    let _ = run(2, false);
    let _ = run(2, true);

    let before = global_stats();
    let mut rows = Vec::new();
    for &t in &[1usize, 2, 4, 8] {
        let ser = run(t, true);
        let sh = run(t, false);
        rows.push(format!(
            "    {{\"threads\": {t}, \"serialized_ns_per_txn\": {ser:.1}, \
             \"sharded_ns_per_txn\": {sh:.1}, \"throughput_ratio\": {:.3}}}",
            ser / sh
        ));
    }
    let d = global_stats().since(&before);

    println!("{{");
    println!("  \"bench\": \"commit_scaling\",");
    println!("  \"cpus\": {cpus},");
    println!("  \"txns_per_thread\": {TXNS_PER_THREAD},");
    println!("  \"samples\": {SAMPLES},");
    println!("  \"workload\": \"disjoint single-var read-modify-write\",");
    println!("  \"baseline\": \"global mutex held across each transaction\",");
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    println!("  \"lane_free_commits\": {},", d.lane_free_commits);
    println!("  \"lane_entries\": {},", d.lane_entries);
    println!("  \"var_lock_spins\": {}", d.var_lock_spins);
    println!("}}");
}
