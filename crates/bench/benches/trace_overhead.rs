//! Tracing-overhead microbench: proves the conflict-provenance trace layer
//! is free when off and bounded when on.
//!
//! The workload is `commit_scaling`'s sharded configuration verbatim —
//! disjoint single-var read-modify-writes at 1/2/4/8 threads, best of 3
//! samples — so the `traced_off` column is directly comparable to the
//! `sharded_ns_per_txn` column of `BENCH_PR4.json`. Three configurations:
//!
//! * **off** — no [`stm::trace::TraceGuard`] live: every emission site is
//!   one relaxed atomic load. This must sit within host noise of the PR4
//!   sharded baseline (this single-CPU container shows up to ~38%
//!   run-to-run spread at 1 thread; see the PR4 caveat).
//! * **on** — a guard live with default rings: begin/commit events are
//!   packed and pushed into the per-thread seqlock ring.
//! * **on, tiny rings** — constant overflow, exercising the drop-oldest
//!   path on every push.
//!
//! Run via `scripts/bench.sh`, which captures the report as
//! `BENCH_PR5.json`.

use std::time::Instant;
use stm::trace::TraceConfig;
use stm::{atomic, global_stats, TVar};

const TXNS_PER_THREAD: u64 = 2000;
const SAMPLES: usize = 3;

#[derive(Clone, Copy)]
enum Tracing {
    Off,
    On,
    OnTinyRings,
}

/// ns/txn, best of [`SAMPLES`], for `threads` workers committing disjoint
/// single-var read-modify-writes under the given tracing configuration.
fn run(threads: usize, tracing: Tracing) -> f64 {
    let guard = match tracing {
        Tracing::Off => None,
        Tracing::On => Some(TraceConfig::default().enable()),
        Tracing::OnTinyRings => Some(TraceConfig { ring_slots: 16 }.enable()),
    };
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let vars: Vec<TVar<u64>> = (0..threads).map(|_| TVar::new(0)).collect();
        let start = Instant::now();
        std::thread::scope(|s| {
            for v in &vars {
                s.spawn(move || {
                    for _ in 0..TXNS_PER_THREAD {
                        atomic(|tx| {
                            let x = v.read(tx);
                            v.write(tx, x + 1);
                        });
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_nanos() as f64;
        for v in &vars {
            assert_eq!(v.read_committed(), TXNS_PER_THREAD, "lost update");
        }
        best = best.min(elapsed / (threads as u64 * TXNS_PER_THREAD) as f64);
    }
    drop(guard);
    best
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm-up (first-touch allocation, lazy statics, ring registration).
    let _ = run(2, Tracing::Off);
    let _ = run(2, Tracing::On);

    let before = global_stats();
    let mut rows = Vec::new();
    for &t in &[1usize, 2, 4, 8] {
        let off = run(t, Tracing::Off);
        let on = run(t, Tracing::On);
        let tiny = run(t, Tracing::OnTinyRings);
        rows.push(format!(
            "    {{\"threads\": {t}, \"traced_off_ns_per_txn\": {off:.1}, \
             \"traced_on_ns_per_txn\": {on:.1}, \
             \"traced_on_tiny_rings_ns_per_txn\": {tiny:.1}, \
             \"on_off_ratio\": {:.3}}}",
            on / off
        ));
    }
    let d = global_stats().since(&before);

    println!("{{");
    println!("  \"bench\": \"trace_overhead\",");
    println!("  \"cpus\": {cpus},");
    println!("  \"txns_per_thread\": {TXNS_PER_THREAD},");
    println!("  \"samples\": {SAMPLES},");
    println!("  \"workload\": \"disjoint single-var read-modify-write (commit_scaling's sharded config)\",");
    println!("  \"baseline\": \"tracing off; compare traced_off to BENCH_PR4.json commit_scaling sharded_ns_per_txn\",");
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    println!("  \"trace_events_dropped\": {}", d.trace_events_dropped);
    println!("}}");
}
