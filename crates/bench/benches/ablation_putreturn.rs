//! Ablation (paper §5.1, "Extensions to java.util.Map"): `put` returning the
//! old value versus `put_discard`.
//!
//! The paper's "LastModified" idiom: many transactions write the *same* key
//! without caring about the previous value:
//!
//! ```java
//! map.put("LastModified", new Date());
//! ```
//!
//! A returning `put` reads the key and therefore orders all writers; the
//! information-hiding variant lets them commute.

use sim::{run_tm, TmWorkload};
use stm::Txn;
use txcollections::TransactionalMap;

const CPUS: usize = 16;
const TXNS: usize = 200;
const THINK: u64 = 20_000;

struct Workload {
    map: TransactionalMap<u64, u64>,
    discard: bool,
}

impl TmWorkload for Workload {
    fn txn_count(&self, _cpu: usize) -> usize {
        TXNS
    }
    fn run(&self, cpu: usize, seq: usize, tx: &mut Txn) {
        sim::think(THINK / 2);
        // Every transaction stamps the same "LastModified" key.
        let stamp = (cpu * 100_000 + seq) as u64;
        if self.discard {
            self.map.put_discard(tx, 0, stamp);
        } else {
            self.map.put(tx, 0, stamp);
        }
        sim::think(THINK / 2);
    }
}

fn run(discard: bool) -> (u64, u64, u64) {
    let w = Workload {
        map: TransactionalMap::new(),
        discard,
    };
    let r = run_tm(CPUS, &w);
    (
        r.commits,
        r.violations_memory + r.violations_semantic,
        r.makespan,
    )
}

fn main() {
    println!("Ablation: put (returns old value) vs put_discard on one shared key, 16 CPUs");
    let (c, v, m) = run(false);
    println!(
        "  put         : {c} commits, {v} violations, makespan {m} cycles ({:.3} viol/txn)",
        v as f64 / c as f64
    );
    let (c, v, m) = run(true);
    println!(
        "  put_discard : {c} commits, {v} violations, makespan {m} cycles ({:.3} viol/txn)",
        v as f64 / c as f64
    );
    println!("\nblind writes to the same key commute (no read, no key lock, no ordering) — §5.1.");
}
