//! Metrics-overhead microbench: proves the dimensional metrics layer
//! (`stm::metrics`) is free when off and allocation-free when on.
//!
//! Three sections:
//!
//! * **off vs on** — `trace_overhead`'s workload verbatim (disjoint
//!   single-var read-modify-writes at 1/2/4/8 threads, best of 3): with
//!   metrics off every emission site is one relaxed atomic load, so the
//!   off column must sit within host noise of the untraced baselines
//!   (this single-CPU container shows up to ~38% run-to-run spread at 1
//!   thread — ns/txn is reported, the gated signal is the on/off ratio
//!   with a generous noise-absorbing ceiling).
//! * **allocation count** — a counting `#[global_allocator]` wraps a warm
//!   single-threaded emission loop over every public emitter and both
//!   histogram entry points. The loop must allocate **zero** times
//!   (`metrics_alloc_count`, ceiling-gated at 0 by benchdiff): counters
//!   are open-addressed slab increments, histograms are fixed arrays.
//! * **commit latency per backend** — with metrics on, the commit-latency
//!   histogram's p50/p99/max per backend (plain TVar read-modify-write vs
//!   a boosted `TransactionalMap`), the windowed-percentile table
//!   `txtop --metrics` renders, captured into the checked-in report.
//!
//! Run via `scripts/bench.sh`, which captures the report as
//! `BENCH_PR10.json` and gates it with benchdiff.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;
use stm::metrics::{self, HistKind, MetricsConfig};
use stm::trace::intern;
use stm::{atomic, TVar};
use txcollections::TransactionalMap;

// ----------------------------------------------------------------------
// Counting allocator
// ----------------------------------------------------------------------

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

// ----------------------------------------------------------------------
// Off/on overhead on the disjoint-RMW workload
// ----------------------------------------------------------------------

const TXNS_PER_THREAD: u64 = 2000;
const SAMPLES: usize = 3;

/// ns/txn, best of [`SAMPLES`], for `threads` workers committing disjoint
/// single-var read-modify-writes with metrics off or on.
fn run(threads: usize, metrics_on: bool) -> f64 {
    let guard = metrics_on.then(|| MetricsConfig::default().enable());
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let vars: Vec<TVar<u64>> = (0..threads).map(|_| TVar::new(0)).collect();
        let start = Instant::now();
        std::thread::scope(|s| {
            for v in &vars {
                s.spawn(move || {
                    for _ in 0..TXNS_PER_THREAD {
                        atomic(|tx| {
                            let x = v.read(tx);
                            v.write(tx, x + 1);
                        });
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_nanos() as f64;
        for v in &vars {
            assert_eq!(v.read_committed(), TXNS_PER_THREAD, "lost update");
        }
        best = best.min(elapsed / (threads as u64 * TXNS_PER_THREAD) as f64);
    }
    drop(guard);
    best
}

// ----------------------------------------------------------------------
// Allocation-free emission
// ----------------------------------------------------------------------

const EMISSION_ITERS: u64 = 10_000;

/// Allocations observed inside a warm emission loop covering every public
/// counter emitter and both histogram entry points. Must be zero: the
/// off-cost discipline (TX014) promises fixed-key slab increments.
fn emission_alloc_count() -> u64 {
    let guard = MetricsConfig::default().enable();
    // Warm outside the counting window: interning takes the symbol-table
    // mutex and allocates (sanctioned, once per class), and the first
    // emission on a thread registers its slab shard.
    let class = intern("alloc-probe");
    metrics::doom_landed(class, 1);
    metrics::stripe_blocked(class, 1);
    metrics::cache_hit(class);
    metrics::hist_record_ns(HistKind::CommitLatency, 1);
    metrics::hist_elapsed(HistKind::SnapshotRead, metrics::timer());

    let before = ALLOCS.load(Ordering::Relaxed);
    COUNTING.store(true, Ordering::SeqCst);
    for i in 0..EMISSION_ITERS {
        metrics::doom_landed(class, i % 16);
        metrics::stripe_blocked(class, i % 16);
        metrics::cache_hit(class);
        metrics::hist_record_ns(HistKind::CommitLatency, i);
        metrics::hist_elapsed(HistKind::SnapshotRead, metrics::timer());
    }
    COUNTING.store(false, Ordering::SeqCst);
    let count = ALLOCS.load(Ordering::Relaxed) - before;
    drop(guard);
    count
}

// ----------------------------------------------------------------------
// Commit-latency percentiles per backend
// ----------------------------------------------------------------------

const LATENCY_THREADS: u64 = 2;

/// One report row: run `workload` under enabled metrics and read the
/// commit-latency percentiles out of the closed window.
fn latency_row(backend: &str, workload: impl FnOnce()) -> String {
    let guard = MetricsConfig::default().enable();
    let before = metrics::window();
    workload();
    let w = metrics::window().diff(&before);
    drop(guard);
    let h = w.histogram(HistKind::CommitLatency);
    format!(
        "    {{\"backend\": \"{backend}\", \"commit_count\": {}, \
         \"commit_p50_ns\": {}, \"commit_p99_ns\": {}, \"commit_max_ns\": {}}}",
        h.count(),
        h.p50(),
        h.p99(),
        h.max
    )
}

fn tvar_workload() {
    let vars: Vec<TVar<u64>> = (0..LATENCY_THREADS).map(|_| TVar::new(0)).collect();
    std::thread::scope(|s| {
        for v in &vars {
            s.spawn(move || {
                for _ in 0..TXNS_PER_THREAD {
                    atomic(|tx| {
                        let x = v.read(tx);
                        v.write(tx, x + 1);
                    });
                }
            });
        }
    });
}

fn map_workload() {
    let map: TransactionalMap<u64, u64> = TransactionalMap::new();
    std::thread::scope(|s| {
        for t in 0..LATENCY_THREADS {
            let map = map.clone();
            s.spawn(move || {
                for i in 0..TXNS_PER_THREAD {
                    let k = t * TXNS_PER_THREAD + i;
                    atomic(|tx| map.put_discard(tx, k, i));
                }
            });
        }
    });
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm-up (first-touch allocation, lazy statics, shard registration).
    let _ = run(2, false);
    let _ = run(2, true);

    let mut rows = Vec::new();
    for &t in &[1usize, 2, 4, 8] {
        let off = run(t, false);
        let on = run(t, true);
        rows.push(format!(
            "    {{\"threads\": {t}, \"metrics_off_ns_per_txn\": {off:.1}, \
             \"metrics_on_ns_per_txn\": {on:.1}, \"metrics_on_off_ratio\": {:.3}}}",
            on / off
        ));
    }

    let alloc_count = emission_alloc_count();
    let latency_rows = [
        latency_row("tvar_rmw", tvar_workload),
        latency_row("boosted_map", map_workload),
    ];

    println!("{{");
    println!("  \"pr\": 10,");
    println!("  \"bench\": \"metrics_overhead\",");
    println!("  \"cpus\": {cpus},");
    println!(
        "  \"caveat\": \"single-CPU container: thread counts above 1 measure scheduler \
         interleaving, not parallelism, and ns/txn carries up to ~38% run-to-run spread — \
         the gated signals are metrics_alloc_count (exactly 0 by construction) and the \
         summed metrics_on_off_ratio with a generous noise ceiling; latency percentiles \
         are log2 bucket upper bounds, reported not gated\","
    );
    println!(
        "  \"claim\": \"disabled metrics cost one relaxed load per emission site (off \
         column within host noise of the untraced baseline), and the enabled hot path \
         allocates nothing: counters are open-addressed thread-local slab increments, \
         histograms fixed arrays\","
    );
    println!("  \"txns_per_thread\": {TXNS_PER_THREAD},");
    println!("  \"samples\": {SAMPLES},");
    println!(
        "  \"workload\": \"disjoint single-var read-modify-write (commit_scaling's sharded \
         config); latency rows add a boosted TransactionalMap put workload at \
         {LATENCY_THREADS} threads\","
    );
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    println!("  \"commit_latency_by_backend\": [");
    println!("{}", latency_rows.join(",\n"));
    println!("  ],");
    println!("  \"emission_iters\": {EMISSION_ITERS},");
    println!("  \"metrics_alloc_count\": {alloc_count}");
    println!("}}");
}
