//! Snapshot vs validated reads (PR 9): the same read-only workload on one
//! shared `TransactionalMap` run under ordinary validated transactions
//! (`stm::atomic`) and under never-aborting snapshot transactions
//! (`stm::atomic_read`), at 1/2/4/8 threads — plus a **mixed** cell that
//! measures the abort-rate delta the snapshot mode exists to deliver: a
//! size-changing writer racing whole-map observers dooms validated readers
//! (the paper's §5.1 size pain point) and dooms nobody once the observers
//! run as snapshots.
//!
//! Ceiling-gated leaves (benchdiff, NEW file only):
//! * `snapshot_abort_count` — aborts inside the snapshot windows; the
//!   design guarantee is **zero by construction**, so the ceiling is 0.
//! * `snapshot_lock_acquisitions` — semantic-lock acquisitions by snapshot
//!   readers; the kernel's snapshot skip makes this exactly 0.
//! * `snapshot_fallback_rate` — chain-truncation fallbacks per snapshot
//!   transaction; bounded, not zero, because a pinned reader racing a fast
//!   writer can legitimately outlive the depth-bounded chain.
//!
//! **Read ns/op together with `cpus`.** On a single-CPU host thread counts
//! above 1 measure scheduler interleaving, not parallelism; counters are
//! the comparable signal, ns/op is a trend line.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use stm::{atomic, atomic_read, global_stats, StatsSnapshot};
use txcollections::TransactionalMap;

const TXNS_PER_THREAD: u64 = 300;
const OPS_PER_TXN: u64 = 16;
const KEYS: u64 = 256;
const SAMPLES: usize = 5;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const MIXED_READERS: usize = 4;
const MIXED_WRITER_TXNS: u64 = 400;

fn seeded_map() -> Arc<TransactionalMap<u64, u64>> {
    let map = Arc::new(TransactionalMap::<u64, u64>::with_stripes(16));
    let m = map.clone();
    atomic(move |tx| {
        for k in 0..KEYS {
            m.put_discard(tx, k, k);
        }
    });
    map
}

/// One timed run: `threads` readers over the shared keyspace, validated or
/// snapshot. Returns ns per collection op.
fn run_read(map: &Arc<TransactionalMap<u64, u64>>, threads: usize, snapshot: bool) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let map = map.clone();
            s.spawn(move || {
                for i in 0..TXNS_PER_THREAD {
                    let body = |tx: &mut stm::Txn| {
                        for j in 0..OPS_PER_TXN {
                            let k = (t * 7 + i * OPS_PER_TXN + j) % KEYS;
                            let _ = map.get(tx, &k);
                        }
                    };
                    if snapshot {
                        atomic_read(body);
                    } else {
                        atomic(body);
                    }
                }
            });
        }
    });
    start.elapsed().as_nanos() as f64 / (threads as u64 * TXNS_PER_THREAD * OPS_PER_TXN) as f64
}

/// The mixed cell: one size-changing writer (insert a fresh key, then
/// remove it) racing `MIXED_READERS` whole-map observers (`size` plus a few
/// gets). Validated observers hold the size lock in observe mode and the
/// writer's commit dooms them; snapshot observers touch no lock at all.
fn run_mixed(map: &Arc<TransactionalMap<u64, u64>>, snapshot: bool) {
    // Start barrier + a paced writer: without them the writer burns through
    // its txns before the reader threads even get scheduled on a 1-CPU
    // host, and the race being measured never overlaps.
    let barrier = Arc::new(std::sync::Barrier::new(MIXED_READERS + 1));
    std::thread::scope(|s| {
        {
            let map = map.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                for i in 0..MIXED_WRITER_TXNS {
                    let k = 10_000_000 + i;
                    atomic(|tx| {
                        map.put_discard(tx, k, i);
                    });
                    atomic(|tx| {
                        map.remove_discard(tx, &k);
                    });
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
            });
        }
        for t in 0..MIXED_READERS as u64 {
            let map = map.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                for i in 0..TXNS_PER_THREAD {
                    let body = |tx: &mut stm::Txn| {
                        let _ = map.size(tx);
                        // Hold the observation open long enough for the
                        // writer to commit against it (the paper's
                        // long-running observer): on a 1-CPU host a short
                        // reader transaction is never preempted mid-body,
                        // so without this the doom race the cell exists to
                        // measure does not occur at all. Both modes pay the
                        // same pause, so the abort delta stays comparable.
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        for j in 0..4 {
                            let _ = map.get(tx, &((t + i + j) % KEYS));
                        }
                    };
                    if snapshot {
                        atomic_read(body);
                    } else {
                        atomic(body);
                    }
                }
            });
        }
    });
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct Window {
    ns_per_op: f64,
    commits: u64,
    aborts: u64,
    snapshot_reads: u64,
    snapshot_fallbacks: u64,
    lock_acquisitions: u64,
}

/// Measure both modes at `threads`, alternating order across samples so
/// host drift hits both equally. Lock acquisitions come from the map's own
/// semantic stats (windowed), everything else from the global stm stats.
fn run_pair(threads: usize) -> (Window, Window) {
    let map = seeded_map();
    let (mut val_ns, mut snap_ns) = (Vec::new(), Vec::new());
    let mut windows = [(0u64, 0u64, 0u64, 0u64, 0u64), (0, 0, 0, 0, 0)]; // [validated, snapshot]
    for round in 0..SAMPLES {
        for &snapshot in &[round % 2 == 1, round % 2 == 0] {
            let sem = map.semantic_stats();
            let acq0 = sem.lock_acquisitions.load(Ordering::Relaxed);
            let before = global_stats();
            let ns = run_read(&map, threads, snapshot);
            let d = global_stats().since(&before);
            let acq = sem.lock_acquisitions.load(Ordering::Relaxed) - acq0;
            let w = &mut windows[usize::from(snapshot)];
            w.0 += d.commits;
            w.1 += d.aborts();
            w.2 += d.snapshot_reads;
            w.3 += d.snapshot_fallbacks;
            w.4 += acq;
            if snapshot {
                snap_ns.push(ns);
            } else {
                val_ns.push(ns);
            }
        }
    }
    let mk = |ns: &mut Vec<f64>, w: (u64, u64, u64, u64, u64)| Window {
        ns_per_op: median(ns),
        commits: w.0,
        aborts: w.1,
        snapshot_reads: w.2,
        snapshot_fallbacks: w.3,
        lock_acquisitions: w.4,
    };
    (mk(&mut val_ns, windows[0]), mk(&mut snap_ns, windows[1]))
}

fn window_json(w: &Window) -> String {
    format!(
        "{{\"commits\": {}, \"aborts\": {}, \"snapshot_reads\": {}, \
         \"snapshot_fallbacks\": {}, \"lock_acquisitions\": {}}}",
        w.commits, w.aborts, w.snapshot_reads, w.snapshot_fallbacks, w.lock_acquisitions
    )
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm-up: lazy statics, first-touch allocation, both modes.
    {
        let map = seeded_map();
        let _ = run_read(&map, 2, false);
        let _ = run_read(&map, 2, true);
    }

    let mut rows = Vec::new();
    let mut snapshot_aborts_total = 0u64;
    let mut snapshot_acq_total = 0u64;
    let mut snapshot_txns_total = 0u64;
    let mut snapshot_fallbacks_total = 0u64;
    for &t in &THREAD_COUNTS {
        let (val, snap) = run_pair(t);
        snapshot_aborts_total += snap.aborts;
        snapshot_acq_total += snap.lock_acquisitions;
        snapshot_fallbacks_total += snap.snapshot_fallbacks;
        snapshot_txns_total += SAMPLES as u64 * t as u64 * TXNS_PER_THREAD;
        rows.push(format!(
            "    {{\"threads\": {t}, \"validated_ns_per_op\": {:.1}, \
             \"snapshot_ns_per_op\": {:.1}, \"snapshot_over_validated\": {:.3}, \
             \"validated_counters\": {}, \"snapshot_counters\": {}}}",
            val.ns_per_op,
            snap.ns_per_op,
            snap.ns_per_op / val.ns_per_op,
            window_json(&val),
            window_json(&snap),
        ));
    }

    // Mixed cell: same racing workload, observers validated vs snapshot.
    let mixed = {
        let map = seeded_map();
        let before = global_stats();
        run_mixed(&map, false);
        let val: StatsSnapshot = global_stats().since(&before);
        let map = seeded_map();
        let before = global_stats();
        run_mixed(&map, true);
        let snap = global_stats().since(&before);
        snapshot_aborts_total += snap.aborts();
        snapshot_fallbacks_total += snap.snapshot_fallbacks;
        snapshot_txns_total += (MIXED_READERS as u64) * TXNS_PER_THREAD;
        format!(
            "    {{\"mixed_validated_aborts\": {}, \"mixed_validated_dooms\": {}, \
             \"mixed_snapshot_aborts\": {}, \"mixed_snapshot_fallbacks\": {}, \
             \"mixed_abort_delta\": {}}}",
            val.aborts(),
            val.dooms_issued,
            snap.aborts(),
            snap.snapshot_fallbacks,
            val.aborts() as i64 - snap.aborts() as i64,
        )
    };

    let fallback_rate = snapshot_fallbacks_total as f64 / snapshot_txns_total as f64;

    println!("{{");
    println!("  \"pr\": 9,");
    println!("  \"bench\": \"snapshot_reads\",");
    println!("  \"cpus\": {cpus},");
    println!(
        "  \"caveat\": \"single-CPU container: thread counts above 1 measure scheduler \
         interleaving, not parallelism, and ns/op carries host noise — the gated signals are \
         the windowed counters (snapshot_abort_count, snapshot_lock_acquisitions, \
         snapshot_fallback_rate), which are deterministic for the workload shape\","
    );
    println!(
        "  \"claim\": \"snapshot transactions execute zero aborts and zero semantic-lock \
         acquisitions at every thread count, and the mixed cell's abort-rate delta shows the \
         point of the mode: validated whole-map observers racing a size-changing writer absorb \
         dooms, snapshot observers absorb none\","
    );
    println!("  \"txns_per_thread\": {TXNS_PER_THREAD},");
    println!("  \"ops_per_txn\": {OPS_PER_TXN},");
    println!("  \"samples\": {SAMPLES},");
    println!(
        "  \"workload\": \"read-only txns of {OPS_PER_TXN} gets over {KEYS} shared keys, \
         validated vs snapshot, at 1/2/4/8 threads; mixed cell is 1 insert+remove writer vs \
         {MIXED_READERS} size+get observers\","
    );
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    println!("  \"mixed\": [");
    println!("{mixed}");
    println!("  ],");
    println!("  \"snapshot_abort_count\": {snapshot_aborts_total},");
    println!("  \"snapshot_lock_acquisitions\": {snapshot_acq_total},");
    println!("  \"snapshot_fallback_rate\": {fallback_rate:.4}");
    println!("}}");
}
