//! Boosted vs TVar map backends (PR 7): the same uncontended workloads on
//! one shared `TransactionalMap` built over the TVar-based `TxHashMap` and
//! over the non-transactional `BoostedHashMap`, plus a raw (untransacted)
//! `BoostedHashMap` loop as the "plain sharded map" floor the ROADMAP's
//! "within ~2× on uncontended ops" target is measured against.
//!
//! Three workloads at 1/2/4/8 threads, thread-private keys throughout (no
//! semantic conflicts, zero dooms asserted):
//!
//! * `get`    — read-only lookups of pre-seeded keys,
//! * `insert` — overwriting puts,
//! * `mixed`  — get+put pairs (the collection_scaling shape).
//!
//! Windowed stm counters (`lane_entries`, `lane_free_commits`,
//! `var_lock_spins`, `stripe_lock_spins`) are reported per configuration so
//! a regression shows up as protocol traffic, not just as ns/op on a noisy
//! host: the boosted map must show **zero var_lock_spins from backend
//! traffic** (it has no TVars; only the commit machinery's own vars
//! remain), identical semantic-lock traffic, and the same lane profile.
//!
//! **Read ns/op together with `cpus`.** On a single-CPU host thread counts
//! above 1 measure scheduler interleaving, not parallelism; the numbers
//! are for trend comparison against the checked-in JSON of later PRs, not
//! absolute claims.
//!
//! PR 8 adds the **amortization sweep**: read-only transactions at
//! `ops_per_txn` 1/16/64 with every op on one key (`repeat`) or on rotating
//! keys (`distinct`), reporting per-transaction protocol counters —
//! open-nested commits (now zero: reads flatten), flattened reads, stripe
//! lock acquisitions, and cache hits. The `repeat_*` leaves are ceiling-
//! gated by benchdiff: a repeat-key transaction must acquire one stripe
//! lock per distinct key and run no open-nested child commits.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use stm::{atomic, global_stats, StatsSnapshot};
use txcollections::{MapBackend, TransactionalMap};
use txstruct::BoostedHashMap;

const TXNS_PER_THREAD: u64 = 250;
const OPS_PER_TXN: u64 = 16;
const KEYS_PER_THREAD: u64 = 64;
const SAMPLES: usize = 5;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Get,
    Insert,
    Mixed,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Get => "get",
            Workload::Insert => "insert",
            Workload::Mixed => "mixed",
        }
    }
}

/// One timed run over a transactional map: `threads` workers on disjoint
/// key ranges; returns ns per collection op.
fn run_tx<B: MapBackend<u64, u64>>(
    map: Arc<TransactionalMap<u64, u64, B>>,
    threads: usize,
    w: Workload,
) -> f64 {
    // Seed every key the workload will touch so `get` always hits.
    let m = map.clone();
    atomic(move |tx| {
        for t in 0..threads as u64 {
            for k in 0..KEYS_PER_THREAD {
                m.put_discard(tx, t * 1_000_000 + k, 1);
            }
        }
    });
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let map = map.clone();
            s.spawn(move || {
                for i in 0..TXNS_PER_THREAD {
                    atomic(|tx| {
                        for j in 0..OPS_PER_TXN {
                            let k = t * 1_000_000 + (i * OPS_PER_TXN + j) % KEYS_PER_THREAD;
                            match w {
                                Workload::Get => {
                                    let _ = map.get(tx, &k);
                                }
                                Workload::Insert => map.put_discard(tx, k, i),
                                Workload::Mixed => {
                                    let cur = map.get(tx, &k).unwrap_or(0);
                                    map.put_discard(tx, k, cur + 1);
                                }
                            }
                        }
                    });
                }
            });
        }
    });
    let elapsed = start.elapsed().as_nanos() as f64;
    assert_eq!(
        map.semantic_stats().total(),
        0,
        "distinct-key workload doomed someone"
    );
    elapsed / (threads as u64 * TXNS_PER_THREAD * OPS_PER_TXN) as f64
}

/// The untransacted floor: the same op mix straight against a
/// `BoostedHashMap`, no stm anywhere.
fn run_raw(threads: usize, w: Workload) -> f64 {
    let map: Arc<BoostedHashMap<u64, u64>> = Arc::new(BoostedHashMap::new());
    for t in 0..threads as u64 {
        for k in 0..KEYS_PER_THREAD {
            let _ = map.insert(t * 1_000_000 + k, 1);
        }
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let map = map.clone();
            s.spawn(move || {
                for i in 0..TXNS_PER_THREAD {
                    for j in 0..OPS_PER_TXN {
                        let k = t * 1_000_000 + (i * OPS_PER_TXN + j) % KEYS_PER_THREAD;
                        match w {
                            Workload::Get => {
                                let _ = map.get(&k);
                            }
                            Workload::Insert => {
                                let _ = map.insert(k, i);
                            }
                            Workload::Mixed => {
                                let cur = map.get(&k).unwrap_or(0);
                                let _ = map.insert(k, cur + 1);
                            }
                        }
                    }
                }
            });
        }
    });
    start.elapsed().as_nanos() as f64 / (threads as u64 * TXNS_PER_THREAD * OPS_PER_TXN) as f64
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct Config {
    ns_per_op: f64,
    counters: StatsSnapshot,
}

/// Measure TVar and boosted configurations at (`threads`, `w`), interleaved
/// with alternating order so host drift hits both equally.
fn run_pair(threads: usize, w: Workload) -> (Config, Config) {
    let (mut tvar, mut boosted) = (Vec::new(), Vec::new());
    let mut tvar_counters = StatsSnapshot::default();
    let mut boosted_counters = StatsSnapshot::default();
    for round in 0..SAMPLES {
        let run_t = || {
            run_tx(
                Arc::new(TransactionalMap::<u64, u64>::with_stripes(16)),
                threads,
                w,
            )
        };
        let run_b = || {
            run_tx(
                Arc::new(
                    TransactionalMap::<u64, u64, BoostedHashMap<u64, u64>>::boosted_with_stripes(
                        16,
                    ),
                ),
                threads,
                w,
            )
        };
        let before = global_stats();
        let (first_ns, second_ns) = if round % 2 == 0 {
            let f = run_t();
            let mid = global_stats();
            let s = run_b();
            tvar_counters = add(&tvar_counters, &mid.since(&before));
            boosted_counters = add(&boosted_counters, &global_stats().since(&mid));
            (f, s)
        } else {
            let f = run_b();
            let mid = global_stats();
            let s = run_t();
            boosted_counters = add(&boosted_counters, &mid.since(&before));
            tvar_counters = add(&tvar_counters, &global_stats().since(&mid));
            (f, s)
        };
        if round % 2 == 0 {
            tvar.push(first_ns);
            boosted.push(second_ns);
        } else {
            boosted.push(first_ns);
            tvar.push(second_ns);
        }
    }
    (
        Config {
            ns_per_op: median(&mut tvar),
            counters: tvar_counters,
        },
        Config {
            ns_per_op: median(&mut boosted),
            counters: boosted_counters,
        },
    )
}

/// Sum the windowed counters this bench reports (StatsSnapshot has no Add).
fn add(a: &StatsSnapshot, b: &StatsSnapshot) -> StatsSnapshot {
    let mut out = *a;
    out.commits += b.commits;
    out.lane_entries += b.lane_entries;
    out.lane_free_commits += b.lane_free_commits;
    out.var_lock_spins += b.var_lock_spins;
    out.stripe_lock_spins += b.stripe_lock_spins;
    out.global_stripe_entries += b.global_stripe_entries;
    out.dooms_issued += b.dooms_issued;
    out.open_commits += b.open_commits;
    out.open_flattened += b.open_flattened;
    out.lock_cache_hits += b.lock_cache_hits;
    out
}

fn counters_json(c: &StatsSnapshot) -> String {
    format!(
        "{{\"commits\": {}, \"lane_entries\": {}, \"lane_free_commits\": {}, \
         \"var_lock_spins\": {}, \"stripe_lock_spins\": {}, \
         \"global_stripe_entries\": {}, \"dooms_issued\": {}, \
         \"open_commits\": {}, \"open_flattened\": {}, \"lock_cache_hits\": {}}}",
        c.commits,
        c.lane_entries,
        c.lane_free_commits,
        c.var_lock_spins,
        c.stripe_lock_spins,
        c.global_stripe_entries,
        c.dooms_issued,
        c.open_commits,
        c.open_flattened,
        c.lock_cache_hits
    )
}

// ---------------------------------------------------------------------
// Amortization sweep (PR 8)
// ---------------------------------------------------------------------

struct SweepCell {
    ns_per_op: f64,
    open_commits_per_txn: f64,
    open_flattened_per_txn: f64,
    lock_acquisitions_per_txn: f64,
    lock_cache_hits_per_txn: f64,
    /// Acquisitions beyond one per distinct key touched — the fast-path
    /// contract says this is zero.
    excess_lock_acquisitions_per_txn: f64,
}

/// Single-threaded read-only transactions of `ops_per_txn` gets: all on one
/// key (`repeat`) or rotating through `KEYS_PER_THREAD` (`distinct`).
/// Derived counters are per transaction, from the map's own semantic stats
/// and the windowed global stm counters.
fn run_sweep<B: MapBackend<u64, u64>>(
    map: Arc<TransactionalMap<u64, u64, B>>,
    ops_per_txn: u64,
    repeat: bool,
) -> SweepCell {
    let m = map.clone();
    atomic(move |tx| {
        for k in 0..KEYS_PER_THREAD {
            m.put_discard(tx, k, 1);
        }
    });
    let distinct_per_txn = if repeat {
        1
    } else {
        ops_per_txn.min(KEYS_PER_THREAD)
    };
    let sem = map.semantic_stats();
    let acq0 = sem.lock_acquisitions.load(Ordering::Relaxed);
    let hits0 = sem.lock_cache_hits.load(Ordering::Relaxed);
    let before = global_stats();
    let start = Instant::now();
    for _ in 0..TXNS_PER_THREAD {
        let map = map.clone();
        atomic(move |tx| {
            for j in 0..ops_per_txn {
                let k = if repeat { 0 } else { j % KEYS_PER_THREAD };
                let _ = map.get(tx, &k);
            }
        });
    }
    let ns_per_op =
        start.elapsed().as_nanos() as f64 / (TXNS_PER_THREAD * ops_per_txn.max(1)) as f64;
    let d = global_stats().since(&before);
    let txns = TXNS_PER_THREAD as f64;
    let acq = (sem.lock_acquisitions.load(Ordering::Relaxed) - acq0) as f64;
    let hits = (sem.lock_cache_hits.load(Ordering::Relaxed) - hits0) as f64;
    SweepCell {
        ns_per_op,
        open_commits_per_txn: d.open_commits as f64 / txns,
        open_flattened_per_txn: d.open_flattened as f64 / txns,
        lock_acquisitions_per_txn: acq / txns,
        lock_cache_hits_per_txn: hits / txns,
        excess_lock_acquisitions_per_txn: (acq / txns - distinct_per_txn as f64).max(0.0),
    }
}

/// One sweep row. The per-txn counter leaves are prefixed with the key
/// pattern so benchdiff can ceiling-gate the `repeat_*` family without the
/// `distinct_*` cells polluting the sum.
fn sweep_row(backend: &str, ops_per_txn: u64, repeat: bool, c: &SweepCell) -> String {
    let p = if repeat { "repeat" } else { "distinct" };
    format!(
        "    {{\"backend\": \"{backend}\", \"ops_per_txn\": {ops_per_txn}, \
         \"key_pattern\": \"{p}\", \"ns_per_op\": {:.1}, \
         \"{p}_open_commits_per_txn\": {:.3}, \"{p}_open_flattened_per_txn\": {:.3}, \
         \"{p}_lock_acquisitions_per_txn\": {:.3}, \"{p}_lock_cache_hits_per_txn\": {:.3}, \
         \"{p}_excess_lock_acquisitions_per_txn\": {:.3}}}",
        c.ns_per_op,
        c.open_commits_per_txn,
        c.open_flattened_per_txn,
        c.lock_acquisitions_per_txn,
        c.lock_cache_hits_per_txn,
        c.excess_lock_acquisitions_per_txn,
    )
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm-up: first-touch allocation and lazy statics for all three paths.
    let _ = run_tx(
        Arc::new(TransactionalMap::<u64, u64>::with_stripes(16)),
        2,
        Workload::Mixed,
    );
    let _ = run_tx(
        Arc::new(TransactionalMap::<u64, u64, BoostedHashMap<u64, u64>>::boosted_with_stripes(16)),
        2,
        Workload::Mixed,
    );
    let _ = run_raw(2, Workload::Mixed);

    let mut rows = Vec::new();
    for w in [Workload::Get, Workload::Insert, Workload::Mixed] {
        for &t in &THREAD_COUNTS {
            let (tvar, boosted) = run_pair(t, w);
            let mut raw_samples: Vec<f64> = (0..SAMPLES).map(|_| run_raw(t, w)).collect();
            let raw_ns = median(&mut raw_samples);
            rows.push(format!(
                "    {{\"workload\": \"{}\", \"threads\": {t}, \
                 \"tvar_ns_per_op\": {:.1}, \"boosted_ns_per_op\": {:.1}, \
                 \"raw_sharded_ns_per_op\": {:.1}, \
                 \"boosted_over_tvar\": {:.3}, \"boosted_over_raw\": {:.3}, \
                 \"tvar_counters\": {}, \"boosted_counters\": {}}}",
                w.name(),
                tvar.ns_per_op,
                boosted.ns_per_op,
                raw_ns,
                boosted.ns_per_op / tvar.ns_per_op,
                boosted.ns_per_op / raw_ns,
                counters_json(&tvar.counters),
                counters_json(&boosted.counters),
            ));
        }
    }

    let mut sweep_rows = Vec::new();
    for &ops in &[1u64, 16, 64] {
        for repeat in [true, false] {
            let t = run_sweep(
                Arc::new(TransactionalMap::<u64, u64>::with_stripes(16)),
                ops,
                repeat,
            );
            sweep_rows.push(sweep_row("tvar", ops, repeat, &t));
            let b = run_sweep(
                Arc::new(
                    TransactionalMap::<u64, u64, BoostedHashMap<u64, u64>>::boosted_with_stripes(
                        16,
                    ),
                ),
                ops,
                repeat,
            );
            sweep_rows.push(sweep_row("boosted", ops, repeat, &b));
        }
    }

    println!("{{");
    println!("  \"pr\": 8,");
    println!("  \"bench\": \"boosted_vs_tvar\",");
    println!("  \"cpus\": {cpus},");
    println!(
        "  \"caveat\": \"single-CPU container: thread counts above 1 measure scheduler \
         interleaving, not parallelism, and ns/op carries host noise — compare the windowed \
         counters (lane_entries, var_lock_spins, stripe_lock_spins, open_commits, \
         lock_cache_hits) across PRs, and treat ns/op as a trend line\","
    );
    println!(
        "  \"claim\": \"boosted_over_tvar stays at ~0.7-0.8 and boosted_over_raw tightens vs \
         PR 7 on comparable cells: the txn-local lock cache and flattened read-only opens \
         remove the per-op protocol tax the PR 7 report identified as the sole remaining \
         overhead. The amortization sweep shows it directly — repeat-key transactions run \
         zero open-nested commits and acquire exactly one stripe lock per distinct key \
         (repeat_excess_lock_acquisitions_per_txn = 0), with every further observation \
         answered by the cache\","
    );
    println!("  \"txns_per_thread\": {TXNS_PER_THREAD},");
    println!("  \"ops_per_txn\": {OPS_PER_TXN},");
    println!("  \"samples\": {SAMPLES},");
    println!(
        "  \"workload\": \"thread-private keys on one shared TransactionalMap (zero dooms \
         asserted); raw_sharded is the same op mix on an untransacted BoostedHashMap; the \
         amortization sweep is single-threaded read-only txns at ops_per_txn 1/16/64, \
         repeat-key vs rotating distinct keys\","
    );
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    println!("  \"amortization_sweep\": [");
    println!("{}", sweep_rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
