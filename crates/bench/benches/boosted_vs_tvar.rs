//! Boosted vs TVar map backends (PR 7): the same uncontended workloads on
//! one shared `TransactionalMap` built over the TVar-based `TxHashMap` and
//! over the non-transactional `BoostedHashMap`, plus a raw (untransacted)
//! `BoostedHashMap` loop as the "plain sharded map" floor the ROADMAP's
//! "within ~2× on uncontended ops" target is measured against.
//!
//! Three workloads at 1/2/4/8 threads, thread-private keys throughout (no
//! semantic conflicts, zero dooms asserted):
//!
//! * `get`    — read-only lookups of pre-seeded keys,
//! * `insert` — overwriting puts,
//! * `mixed`  — get+put pairs (the collection_scaling shape).
//!
//! Windowed stm counters (`lane_entries`, `lane_free_commits`,
//! `var_lock_spins`, `stripe_lock_spins`) are reported per configuration so
//! a regression shows up as protocol traffic, not just as ns/op on a noisy
//! host: the boosted map must show **zero var_lock_spins from backend
//! traffic** (it has no TVars; only the commit machinery's own vars
//! remain), identical semantic-lock traffic, and the same lane profile.
//!
//! **Read ns/op together with `cpus`.** On a single-CPU host thread counts
//! above 1 measure scheduler interleaving, not parallelism; the numbers
//! are for trend comparison against the checked-in JSON of later PRs, not
//! absolute claims.

use std::sync::Arc;
use std::time::Instant;
use stm::{atomic, global_stats, StatsSnapshot};
use txcollections::{MapBackend, TransactionalMap};
use txstruct::BoostedHashMap;

const TXNS_PER_THREAD: u64 = 250;
const OPS_PER_TXN: u64 = 16;
const KEYS_PER_THREAD: u64 = 64;
const SAMPLES: usize = 5;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Get,
    Insert,
    Mixed,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Get => "get",
            Workload::Insert => "insert",
            Workload::Mixed => "mixed",
        }
    }
}

/// One timed run over a transactional map: `threads` workers on disjoint
/// key ranges; returns ns per collection op.
fn run_tx<B: MapBackend<u64, u64>>(
    map: Arc<TransactionalMap<u64, u64, B>>,
    threads: usize,
    w: Workload,
) -> f64 {
    // Seed every key the workload will touch so `get` always hits.
    let m = map.clone();
    atomic(move |tx| {
        for t in 0..threads as u64 {
            for k in 0..KEYS_PER_THREAD {
                m.put_discard(tx, t * 1_000_000 + k, 1);
            }
        }
    });
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let map = map.clone();
            s.spawn(move || {
                for i in 0..TXNS_PER_THREAD {
                    atomic(|tx| {
                        for j in 0..OPS_PER_TXN {
                            let k = t * 1_000_000 + (i * OPS_PER_TXN + j) % KEYS_PER_THREAD;
                            match w {
                                Workload::Get => {
                                    let _ = map.get(tx, &k);
                                }
                                Workload::Insert => map.put_discard(tx, k, i),
                                Workload::Mixed => {
                                    let cur = map.get(tx, &k).unwrap_or(0);
                                    map.put_discard(tx, k, cur + 1);
                                }
                            }
                        }
                    });
                }
            });
        }
    });
    let elapsed = start.elapsed().as_nanos() as f64;
    assert_eq!(
        map.semantic_stats().total(),
        0,
        "distinct-key workload doomed someone"
    );
    elapsed / (threads as u64 * TXNS_PER_THREAD * OPS_PER_TXN) as f64
}

/// The untransacted floor: the same op mix straight against a
/// `BoostedHashMap`, no stm anywhere.
fn run_raw(threads: usize, w: Workload) -> f64 {
    let map: Arc<BoostedHashMap<u64, u64>> = Arc::new(BoostedHashMap::new());
    for t in 0..threads as u64 {
        for k in 0..KEYS_PER_THREAD {
            let _ = map.insert(t * 1_000_000 + k, 1);
        }
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let map = map.clone();
            s.spawn(move || {
                for i in 0..TXNS_PER_THREAD {
                    for j in 0..OPS_PER_TXN {
                        let k = t * 1_000_000 + (i * OPS_PER_TXN + j) % KEYS_PER_THREAD;
                        match w {
                            Workload::Get => {
                                let _ = map.get(&k);
                            }
                            Workload::Insert => {
                                let _ = map.insert(k, i);
                            }
                            Workload::Mixed => {
                                let cur = map.get(&k).unwrap_or(0);
                                let _ = map.insert(k, cur + 1);
                            }
                        }
                    }
                }
            });
        }
    });
    start.elapsed().as_nanos() as f64 / (threads as u64 * TXNS_PER_THREAD * OPS_PER_TXN) as f64
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct Config {
    ns_per_op: f64,
    counters: StatsSnapshot,
}

/// Measure TVar and boosted configurations at (`threads`, `w`), interleaved
/// with alternating order so host drift hits both equally.
fn run_pair(threads: usize, w: Workload) -> (Config, Config) {
    let (mut tvar, mut boosted) = (Vec::new(), Vec::new());
    let mut tvar_counters = StatsSnapshot::default();
    let mut boosted_counters = StatsSnapshot::default();
    for round in 0..SAMPLES {
        let run_t = || {
            run_tx(
                Arc::new(TransactionalMap::<u64, u64>::with_stripes(16)),
                threads,
                w,
            )
        };
        let run_b = || {
            run_tx(
                Arc::new(
                    TransactionalMap::<u64, u64, BoostedHashMap<u64, u64>>::boosted_with_stripes(
                        16,
                    ),
                ),
                threads,
                w,
            )
        };
        let before = global_stats();
        let (first_ns, second_ns) = if round % 2 == 0 {
            let f = run_t();
            let mid = global_stats();
            let s = run_b();
            tvar_counters = add(&tvar_counters, &mid.since(&before));
            boosted_counters = add(&boosted_counters, &global_stats().since(&mid));
            (f, s)
        } else {
            let f = run_b();
            let mid = global_stats();
            let s = run_t();
            boosted_counters = add(&boosted_counters, &mid.since(&before));
            tvar_counters = add(&tvar_counters, &global_stats().since(&mid));
            (f, s)
        };
        if round % 2 == 0 {
            tvar.push(first_ns);
            boosted.push(second_ns);
        } else {
            boosted.push(first_ns);
            tvar.push(second_ns);
        }
    }
    (
        Config {
            ns_per_op: median(&mut tvar),
            counters: tvar_counters,
        },
        Config {
            ns_per_op: median(&mut boosted),
            counters: boosted_counters,
        },
    )
}

/// Sum the windowed counters this bench reports (StatsSnapshot has no Add).
fn add(a: &StatsSnapshot, b: &StatsSnapshot) -> StatsSnapshot {
    let mut out = *a;
    out.commits += b.commits;
    out.lane_entries += b.lane_entries;
    out.lane_free_commits += b.lane_free_commits;
    out.var_lock_spins += b.var_lock_spins;
    out.stripe_lock_spins += b.stripe_lock_spins;
    out.global_stripe_entries += b.global_stripe_entries;
    out.dooms_issued += b.dooms_issued;
    out
}

fn counters_json(c: &StatsSnapshot) -> String {
    format!(
        "{{\"commits\": {}, \"lane_entries\": {}, \"lane_free_commits\": {}, \
         \"var_lock_spins\": {}, \"stripe_lock_spins\": {}, \
         \"global_stripe_entries\": {}, \"dooms_issued\": {}}}",
        c.commits,
        c.lane_entries,
        c.lane_free_commits,
        c.var_lock_spins,
        c.stripe_lock_spins,
        c.global_stripe_entries,
        c.dooms_issued
    )
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm-up: first-touch allocation and lazy statics for all three paths.
    let _ = run_tx(
        Arc::new(TransactionalMap::<u64, u64>::with_stripes(16)),
        2,
        Workload::Mixed,
    );
    let _ = run_tx(
        Arc::new(TransactionalMap::<u64, u64, BoostedHashMap<u64, u64>>::boosted_with_stripes(16)),
        2,
        Workload::Mixed,
    );
    let _ = run_raw(2, Workload::Mixed);

    let mut rows = Vec::new();
    for w in [Workload::Get, Workload::Insert, Workload::Mixed] {
        for &t in &THREAD_COUNTS {
            let (tvar, boosted) = run_pair(t, w);
            let mut raw_samples: Vec<f64> = (0..SAMPLES).map(|_| run_raw(t, w)).collect();
            let raw_ns = median(&mut raw_samples);
            rows.push(format!(
                "    {{\"workload\": \"{}\", \"threads\": {t}, \
                 \"tvar_ns_per_op\": {:.1}, \"boosted_ns_per_op\": {:.1}, \
                 \"raw_sharded_ns_per_op\": {:.1}, \
                 \"boosted_over_tvar\": {:.3}, \"boosted_over_raw\": {:.3}, \
                 \"tvar_counters\": {}, \"boosted_counters\": {}}}",
                w.name(),
                tvar.ns_per_op,
                boosted.ns_per_op,
                raw_ns,
                boosted.ns_per_op / tvar.ns_per_op,
                boosted.ns_per_op / raw_ns,
                counters_json(&tvar.counters),
                counters_json(&boosted.counters),
            ));
        }
    }

    println!("{{");
    println!("  \"pr\": 7,");
    println!("  \"bench\": \"boosted_vs_tvar\",");
    println!("  \"cpus\": {cpus},");
    println!(
        "  \"caveat\": \"single-CPU container: thread counts above 1 measure scheduler \
         interleaving, not parallelism, and ns/op carries host noise — compare the windowed \
         counters (lane_entries, var_lock_spins, stripe_lock_spins) across PRs, and treat \
         ns/op as a trend line\","
    );
    println!(
        "  \"claim\": \"boosted_over_tvar sits at ~0.7-0.8 on every cell: dropping TVar \
         read-validation from the backend more than pays for the undo seam, so the boosted \
         map is strictly the faster backend. boosted_over_raw (~10-16x) measures what is \
         left between us and the ROADMAP 'within ~2x of a plain sharded map' target: per-op \
         open-nested semantic locking, now the sole remaining overhead — the backend itself \
         is off the critical path\","
    );
    println!("  \"txns_per_thread\": {TXNS_PER_THREAD},");
    println!("  \"ops_per_txn\": {OPS_PER_TXN},");
    println!("  \"samples\": {SAMPLES},");
    println!(
        "  \"workload\": \"thread-private keys on one shared TransactionalMap (zero dooms \
         asserted); raw_sharded is the same op mix on an untransacted BoostedHashMap\","
    );
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
