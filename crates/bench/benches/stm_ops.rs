//! Criterion microbenches for the raw STM substrate: per-operation costs of
//! reads, writes, commits, nesting, and handlers (wall-clock, host machine).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stm::{atomic, TVar};

fn bench_stm(c: &mut Criterion) {
    let mut g = c.benchmark_group("stm");

    g.bench_function("empty_txn", |b| {
        b.iter(|| atomic(|_tx| black_box(1)));
    });

    let v = TVar::new(42u64);
    g.bench_function("read_1var", |b| {
        b.iter(|| atomic(|tx| black_box(v.read(tx))));
    });

    g.bench_function("write_1var", |b| {
        b.iter(|| atomic(|tx| v.write(tx, black_box(7))));
    });

    g.bench_function("rmw_1var", |b| {
        b.iter(|| {
            atomic(|tx| {
                let x = v.read(tx);
                v.write(tx, x + 1);
            })
        });
    });

    let vars: Vec<TVar<u64>> = (0..64).map(TVar::new).collect();
    g.bench_function("read_64vars", |b| {
        b.iter(|| {
            atomic(|tx| {
                let mut s = 0;
                for v in &vars {
                    s += v.read(tx);
                }
                black_box(s)
            })
        });
    });

    g.bench_function("write_64vars", |b| {
        b.iter(|| {
            atomic(|tx| {
                for (i, v) in vars.iter().enumerate() {
                    v.write(tx, i as u64);
                }
            })
        });
    });

    g.bench_function("closed_nested_rmw", |b| {
        b.iter(|| {
            atomic(|tx| {
                tx.closed(|tx| {
                    let x = v.read(tx);
                    v.write(tx, x + 1);
                })
            })
        });
    });

    g.bench_function("open_nested_rmw", |b| {
        b.iter(|| {
            atomic(|tx| {
                let v2 = v.clone();
                tx.open(move |otx| {
                    let x = v2.read(otx);
                    v2.write(otx, x + 1);
                })
            })
        });
    });

    g.bench_function("commit_handler_registration", |b| {
        b.iter(|| {
            atomic(|tx| {
                // Measures registration cost in isolation; the no-op
                // handler has nothing to compensate.
                tx.on_commit_top(|_| {}); // txlint: allow(TX004)
            })
        });
    });

    g.bench_function("read_committed_untracked", |b| {
        b.iter(|| black_box(v.read_committed()));
    });

    g.finish();
}

criterion_group!(benches, bench_stm);
criterion_main!(benches);
