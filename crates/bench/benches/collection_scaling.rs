//! Collection hot-path scaling microbench (PR 3): distinct-key traffic on
//! ONE shared `TransactionalMap`, striped semantic lock tables (16 stripes)
//! versus the single-table baseline (`with_stripes(1)` — bit-for-bit the old
//! design: one mutex in front of `key2lockers` and one locals shard).
//!
//! Each transaction performs [`OPS_PER_TXN`] get+put pairs on keys private
//! to its thread, so there are no semantic conflicts and no dooms: all
//! slowdown at higher thread counts is lock-table contention, which is
//! exactly what striping removes. Run via `scripts/bench.sh`, which captures
//! the JSON report as `BENCH_PR3.json`.
//!
//! **Read `throughput_ratio` together with `cpus`.** Striping converts
//! lock-table contention into parallel stripe holds, so the wall-clock win
//! requires hardware threads actually colliding on the table. On a
//! single-CPU host no two threads ever *run* concurrently: the single-table
//! mutex is nearly always free at acquisition time (a holder has to be
//! preempted mid-critical-section for anyone to block), so the baseline
//! pays almost no contention cost and the expected ratio is ~1.0 — the
//! striped configuration's extra stripe sweeps in the commit handler trade
//! against the avoided futex handoffs. The contention striping removes is
//! still visible in `contended_acquisitions` (per config: how often a
//! lock-table mutex was found held), which is the serialization that turns
//! into wall-clock loss the moment the host has real parallelism.

use std::time::Instant;
use stm::{atomic, global_stats};
use txcollections::TransactionalMap;

const TXNS_PER_THREAD: u64 = 400;
const OPS_PER_TXN: u64 = 32;
const KEYS_PER_THREAD: u64 = 64;
const SAMPLES: usize = 7;

/// One timed run: `threads` workers hammering disjoint key ranges of one
/// shared map built with `nstripes` stripes; returns ns per collection op.
fn run_once(threads: usize, nstripes: usize) -> f64 {
    let map: TransactionalMap<u64, u64> = TransactionalMap::with_stripes(nstripes);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let map = map.clone();
            s.spawn(move || {
                for i in 0..TXNS_PER_THREAD {
                    atomic(|tx| {
                        for j in 0..OPS_PER_TXN {
                            let k = t * 1_000_000 + (i * OPS_PER_TXN + j) % KEYS_PER_THREAD;
                            let cur = map.get(tx, &k).unwrap_or(0);
                            map.put(tx, k, cur + 1);
                        }
                    });
                }
            });
        }
    });
    let elapsed = start.elapsed().as_nanos() as f64;
    assert_eq!(
        map.semantic_stats().total(),
        0,
        "distinct-key workload doomed someone"
    );
    let ops = threads as u64 * TXNS_PER_THREAD * OPS_PER_TXN;
    elapsed / ops as f64
}

/// Per-configuration outcome at one thread count: median ns/op and the
/// number of contended lock-table acquisitions summed over its samples.
struct Config {
    ns_per_op: f64,
    contended: u64,
}

/// Measure both configurations at `threads`, interleaved with alternating
/// order (AB, BA, AB, …) so slow host drift and positional effects (this
/// may be a shared box) hit both configurations equally.
fn run_pair(threads: usize) -> (Config, Config) {
    let (mut single, mut striped) = (Vec::new(), Vec::new());
    let (mut single_spins, mut striped_spins) = (0u64, 0u64);
    for round in 0..SAMPLES {
        let before = global_stats();
        let (first, second) = if round % 2 == 0 { (1, 16) } else { (16, 1) };
        let first_ns = run_once(threads, first);
        let mid = global_stats();
        let second_ns = run_once(threads, second);
        let (first_spins, second_spins) = (
            mid.since(&before).stripe_lock_spins,
            global_stats().since(&mid).stripe_lock_spins,
        );
        let ((s_ns, s_sp), (x_ns, x_sp)) = if round % 2 == 0 {
            ((first_ns, first_spins), (second_ns, second_spins))
        } else {
            ((second_ns, second_spins), (first_ns, first_spins))
        };
        single.push(s_ns);
        striped.push(x_ns);
        single_spins += s_sp;
        striped_spins += x_sp;
    }
    (
        Config {
            ns_per_op: median(&mut single),
            contended: single_spins,
        },
        Config {
            ns_per_op: median(&mut striped),
            contended: striped_spins,
        },
    )
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm up both configurations (first-touch allocation, lazy statics).
    let _ = run_once(2, 1);
    let _ = run_once(2, 16);

    let before = global_stats();
    let mut rows = Vec::new();
    for &t in &[1usize, 2, 4] {
        let (single, striped) = run_pair(t);
        rows.push(format!(
            "    {{\"threads\": {t}, \"single_table_ns_per_op\": {:.1}, \
             \"striped16_ns_per_op\": {:.1}, \"throughput_ratio\": {:.3}, \
             \"contended_acquisitions\": {{\"single_table\": {}, \"striped16\": {}}}}}",
            single.ns_per_op,
            striped.ns_per_op,
            single.ns_per_op / striped.ns_per_op,
            single.contended,
            striped.contended
        ));
    }
    let d = global_stats().since(&before);

    println!("{{");
    println!("  \"bench\": \"collection_scaling\",");
    println!("  \"cpus\": {cpus},");
    println!(
        "  \"note\": \"throughput_ratio ~1.0 is expected when cpus=1: with no true parallelism \
         the single-table mutex is almost never contended, so there is no serialization for \
         striping to remove — see contended_acquisitions for the collisions that do occur\","
    );
    println!("  \"txns_per_thread\": {TXNS_PER_THREAD},");
    println!("  \"ops_per_txn\": {OPS_PER_TXN},");
    println!("  \"samples\": {SAMPLES},");
    println!("  \"workload\": \"distinct-key get+put pairs on one shared TransactionalMap\",");
    println!("  \"baseline\": \"stripe count 1 (the retired single table mutex)\",");
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    println!("  \"stripe_lock_spins\": {},", d.stripe_lock_spins);
    println!("  \"global_stripe_entries\": {},", d.global_stripe_entries);
    println!("  \"lane_entries\": {}", d.lane_entries);
    println!("}}");
}
