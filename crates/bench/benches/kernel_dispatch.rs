//! Kernel-dispatch microbench: the cost of the compatibility check the
//! doom protocol runs on every (held lock, committed effect) pair.
//!
//! PR 6 made the production dispatch matrix **generated** from the
//! per-class conflict-graph declarations (`mode_compatible`, a
//! const-indexed cube lookup), keeping the hand-written paper table as
//! the oracle spec (`mode_compatible_spec`, a `match` over
//! `(mode, effect, overlap)`). This bench prices both on the identical
//! cell stream and proves the declarative refactor did not slow the
//! hot path; a third column checks the whole-matrix sweep used by the
//! construction-time cross-check (`SemanticCore::new`) stays trivial.
//!
//! The cell stream cycles all 84 `(mode, effect, overlap)` cells via an
//! LCG so the branch predictor sees the mixed pattern a real commit
//! sweep produces, not one hot cell. Best of 3 samples after a warm-up
//! pass; results as hand-rolled JSON on stdout (captured into
//! `BENCH_PR6.json` with the 1-CPU caveat).

use std::hint::black_box;
use std::time::Instant;
use txcollections::{mode_compatible, mode_compatible_spec, ObsMode, UpdateEffect};

const LOOKUPS: u64 = 20_000_000;
const SAMPLES: usize = 3;

/// All 84 dispatch cells, fixed order.
fn cells() -> Vec<(ObsMode, UpdateEffect, bool)> {
    let mut out = Vec::new();
    for m in ObsMode::ALL {
        for e in UpdateEffect::ALL {
            for ov in [false, true] {
                out.push((m, e, ov));
            }
        }
    }
    out
}

/// ns per call, best of [`SAMPLES`], streaming LCG-shuffled cells through
/// `f`. The running XOR of verdicts is black-boxed so the loop cannot be
/// folded away.
fn run(
    cells: &[(ObsMode, UpdateEffect, bool)],
    f: impl Fn(ObsMode, UpdateEffect, bool) -> bool,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let mut acc = false;
        let mut state = 0x9E3779B97F4A7C15u64;
        let start = Instant::now();
        for _ in 0..LOOKUPS {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let (m, e, ov) = cells[(state >> 33) as usize % cells.len()];
            acc ^= f(black_box(m), black_box(e), black_box(ov));
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        black_box(acc);
        best = best.min(elapsed / LOOKUPS as f64);
    }
    best
}

/// ns per full 84-cell agreement sweep (the shape `SemanticCore::new`
/// and the oracle run), best of [`SAMPLES`].
fn run_sweep(cells: &[(ObsMode, UpdateEffect, bool)]) -> f64 {
    const SWEEPS: u64 = 200_000;
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let mut agree = true;
        let start = Instant::now();
        for _ in 0..SWEEPS {
            for &(m, e, ov) in cells {
                agree &= mode_compatible(black_box(m), black_box(e), black_box(ov))
                    == mode_compatible_spec(black_box(m), black_box(e), black_box(ov));
            }
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        assert!(agree, "generated matrix diverged from the spec");
        best = best.min(elapsed / SWEEPS as f64);
    }
    best
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cells = cells();

    // Warm-up.
    let _ = run(&cells, mode_compatible);
    let _ = run(&cells, mode_compatible_spec);

    let generated = run(&cells, mode_compatible);
    let spec = run(&cells, mode_compatible_spec);
    let sweep = run_sweep(&cells);

    println!("{{");
    println!("  \"bench\": \"kernel_dispatch\",");
    println!("  \"cpus\": {cpus},");
    println!("  \"lookups\": {LOOKUPS},");
    println!("  \"samples\": {SAMPLES},");
    println!("  \"workload\": \"LCG-shuffled stream over all 84 (mode, effect, overlap) cells\",");
    println!("  \"results\": {{");
    println!("    \"generated_mode_compatible_ns_per_lookup\": {generated:.3},");
    println!("    \"handwritten_spec_ns_per_lookup\": {spec:.3},");
    println!(
        "    \"generated_over_spec_ratio\": {:.3},",
        generated / spec
    );
    println!("    \"full_84_cell_agreement_sweep_ns\": {sweep:.1}");
    println!("  }}");
    println!("}}");
}
