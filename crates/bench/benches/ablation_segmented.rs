//! Ablation (paper §2.4): does a ConcurrentHashMap-style **segmented** hash
//! map solve the long-transaction conflict problem?
//!
//! The paper's argument: segmentation "statistically reduces the chances of
//! conflicts" for single operations, but "the more updates to the hash
//! table, the more segments likely to be touched. If two long-running
//! transactions perform a number of insert or remove operations on
//! different keys, there is a large probability that at least one key from
//! each transaction will end up in the same segment."
//!
//! This harness sweeps the number of updates per transaction and reports
//! violation rates for: one plain map, a 16-segment map, and a
//! TransactionalMap — reproducing the argument quantitatively.

use jbb::TxnRng;
use sim::{run_tm, TmWorkload};
use stm::Txn;
use txcollections::TransactionalMap;
use txstruct::{SegmentedTxHashMap, TxHashMap};

const KEY_SPACE: u64 = 4096;
const CPUS: usize = 16;
const TXNS: usize = 200;
const THINK: u64 = 20_000;

enum Flavor {
    Plain(TxHashMap<u64, u64>),
    Segmented(SegmentedTxHashMap<u64, u64>),
    Wrapped(TransactionalMap<u64, u64>),
}

struct Workload {
    map: Flavor,
    ops_per_txn: usize,
}

impl TmWorkload for Workload {
    fn txn_count(&self, _cpu: usize) -> usize {
        TXNS
    }
    fn run(&self, cpu: usize, seq: usize, tx: &mut Txn) {
        let mut rng = TxnRng::new(99, cpu, seq);
        for i in 0..self.ops_per_txn {
            sim::think(THINK / self.ops_per_txn as u64);
            // Disjoint keys per CPU: every conflict is an artifact.
            let key = (cpu as u64) * 10_000 + rng.below(KEY_SPACE);
            match &self.map {
                Flavor::Plain(m) => {
                    m.insert(tx, key, i as u64);
                }
                Flavor::Segmented(m) => {
                    m.insert(tx, key, i as u64);
                }
                Flavor::Wrapped(m) => {
                    m.put_discard(tx, key, i as u64);
                }
            }
        }
    }
}

fn violations(map: Flavor, ops: usize) -> (u64, f64) {
    let w = Workload {
        map,
        ops_per_txn: ops,
    };
    let r = run_tm(CPUS, &w);
    let v = r.violations_memory + r.violations_semantic;
    (v, v as f64 / r.commits as f64)
}

fn main() {
    println!("Ablation: segmented hash map vs TransactionalMap (16 CPUs, disjoint keys)");
    println!(
        "{:>12} {:>22} {:>22} {:>22}",
        "ops/txn", "plain (viol/txn)", "16-segment (viol/txn)", "wrapped (viol/txn)"
    );
    for ops in [1usize, 2, 4, 8, 16] {
        let (pv, pr) = violations(Flavor::Plain(TxHashMap::with_capacity(65536)), ops);
        let (sv, sr) = violations(
            Flavor::Segmented(SegmentedTxHashMap::with_capacity(16, 4096)),
            ops,
        );
        let (wv, wr) = violations(Flavor::Wrapped(TransactionalMap::with_capacity(65536)), ops);
        println!("{ops:>12} {pv:>12} ({pr:>6.3}) {sv:>12} ({sr:>6.3}) {wv:>12} ({wr:>6.3})");
    }
    println!(
        "\nsegmentation helps single-op transactions but degrades as transactions \
         grow; the wrapper stays conflict-free (keys are disjoint)."
    );
}
