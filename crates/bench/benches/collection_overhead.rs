//! Criterion microbenches of the single-threaded overhead each layer adds:
//! lock-based map < bare transactional map < TransactionalMap (semantic
//! locks + buffers + handlers). The paper's design accepts this per-op
//! overhead in exchange for long-transaction scalability.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stm::atomic;
use txcollections::{TransactionalMap, TransactionalSortedMap};
use txstruct::{LockHashMap, TxHashMap, TxTreeMap};

const N: u64 = 1024;

fn bench_maps(c: &mut Criterion) {
    let mut g = c.benchmark_group("map_get");

    let lock: LockHashMap<u64, u64> = LockHashMap::new();
    for k in 0..N {
        lock.insert(k, k);
    }
    g.bench_function("lock_hashmap", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7) % N;
            black_box(lock.get(&k))
        });
    });

    let bare: TxHashMap<u64, u64> = TxHashMap::with_capacity(2 * N as usize);
    atomic(|tx| {
        for k in 0..N {
            bare.insert(tx, k, k);
        }
    });
    g.bench_function("bare_txhashmap", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7) % N;
            atomic(|tx| black_box(bare.get(tx, &k)))
        });
    });

    let wrapped: TransactionalMap<u64, u64> = TransactionalMap::with_capacity(2 * N as usize);
    atomic(|tx| {
        for k in 0..N {
            wrapped.put_discard(tx, k, k);
        }
    });
    g.bench_function("transactional_map", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7) % N;
            atomic(|tx| black_box(wrapped.get(tx, &k)))
        });
    });
    g.finish();

    let mut g = c.benchmark_group("map_put");
    g.bench_function("bare_txhashmap", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7) % N;
            atomic(|tx| bare.insert(tx, k, k + 1))
        });
    });
    g.bench_function("transactional_map_put", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7) % N;
            atomic(|tx| wrapped.put(tx, k, k + 1))
        });
    });
    g.bench_function("transactional_map_put_discard", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7) % N;
            atomic(|tx| wrapped.put_discard(tx, k, k + 1))
        });
    });
    g.finish();

    let mut g = c.benchmark_group("sorted_range16");
    let bare_tree: TxTreeMap<u64, u64> = TxTreeMap::new();
    atomic(|tx| {
        for k in 0..N {
            bare_tree.insert(tx, k, k);
        }
    });
    g.bench_function("bare_txtreemap", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7) % (N - 16);
            atomic(|tx| {
                black_box(bare_tree.range_entries(
                    tx,
                    std::ops::Bound::Included(&k),
                    std::ops::Bound::Excluded(&(k + 16)),
                ))
            })
        });
    });
    let wrapped_tree: TransactionalSortedMap<u64, u64> = TransactionalSortedMap::new();
    atomic(|tx| {
        for k in 0..N {
            wrapped_tree.put_discard(tx, k, k);
        }
    });
    g.bench_function("transactional_sortedmap", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 7) % (N - 16);
            atomic(|tx| {
                black_box(wrapped_tree.range_entries(
                    tx,
                    std::ops::Bound::Included(k),
                    std::ops::Bound::Excluded(k + 16),
                ))
            })
        });
    });
    g.finish();
}

criterion_group!(benches, bench_maps);
criterion_main!(benches);
