//! Ablation (paper §5.1, "Alternatives to optimistic concurrency control" +
//! "Redo versus undo logging"): the optimistic redo-logging
//! `TransactionalMap` versus the pessimistic undo-logging
//! `EagerTransactionalMap` under different contention profiles.
//!
//! The paper's trade-off: optimistic detection can livelock long
//! transactions under write pressure ("long-running transactions may be
//! continuously rolled back by shorter ones"); pessimistic detection makes
//! writers/readers wait, losing less work but serializing earlier.

use jbb::TxnRng;
use sim::{run_tm, TmWorkload};
use stm::Txn;
use txcollections::{EagerPolicy, EagerTransactionalMap, TransactionalMap};

const CPUS: usize = 16;
const TXNS: usize = 150;
const THINK: u64 = 20_000;

enum Flavor {
    Lazy(TransactionalMap<u64, u64>),
    Eager(EagerTransactionalMap<u64, u64>),
}

struct Workload {
    map: Flavor,
    /// Keys shared by all CPUs: smaller = hotter.
    hot_keys: u64,
    write_pct: u64,
}

impl TmWorkload for Workload {
    fn txn_count(&self, _cpu: usize) -> usize {
        TXNS
    }
    fn run(&self, cpu: usize, seq: usize, tx: &mut Txn) {
        let mut rng = TxnRng::new(5, cpu, seq);
        let key = rng.below(self.hot_keys);
        let write = rng.below(100) < self.write_pct;
        sim::think(THINK / 2);
        match &self.map {
            Flavor::Lazy(m) => {
                if write {
                    let v = m.get(tx, &key).unwrap_or(0);
                    m.put(tx, key, v + 1);
                } else {
                    std::hint::black_box(m.get(tx, &key));
                }
            }
            Flavor::Eager(m) => {
                if write {
                    let v = m.get(tx, &key).unwrap_or(0);
                    m.put(tx, key, v + 1);
                } else {
                    std::hint::black_box(m.get(tx, &key));
                }
            }
        }
        sim::think(THINK / 2);
    }
}

fn run(map: Flavor, hot_keys: u64, write_pct: u64) -> (u64, u64, u64, u64) {
    let w = Workload {
        map,
        hot_keys,
        write_pct,
    };
    let r = run_tm(CPUS, &w);
    (
        r.makespan,
        r.violations_memory + r.violations_semantic,
        r.self_aborts,
        r.lost_cycles / 1000,
    )
}

fn main() {
    println!(
        "Ablation: optimistic redo (TransactionalMap) vs pessimistic undo \
         (EagerTransactionalMap), {CPUS} CPUs"
    );
    println!(
        "{:>22} {:>14} {:>10} {:>10} {:>12} {:>10}",
        "scenario", "strategy", "makespan", "dooms", "self-aborts", "lost kc"
    );
    for (name, hot, wr) in [
        ("low contention", 4096u64, 20u64),
        ("hot keys, read-heavy", 16, 10),
        ("hot keys, write-heavy", 16, 60),
    ] {
        let (m, v, s, l) = run(Flavor::Lazy(TransactionalMap::with_capacity(8192)), hot, wr);
        println!(
            "{name:>22} {:>14} {m:>10} {v:>10} {s:>12} {l:>10}",
            "lazy/redo"
        );
        let (m, v, s, l) = run(
            Flavor::Eager(EagerTransactionalMap::with_capacity(
                8192,
                EagerPolicy::WriterWaits,
            )),
            hot,
            wr,
        );
        println!(
            "{name:>22} {:>14} {m:>10} {v:>10} {s:>12} {l:>10}",
            "eager/waits"
        );
        let (m, v, s, l) = run(
            Flavor::Eager(EagerTransactionalMap::with_capacity(
                8192,
                EagerPolicy::DoomReaders,
            )),
            hot,
            wr,
        );
        println!(
            "{name:>22} {:>14} {m:>10} {v:>10} {s:>12} {l:>10}",
            "eager/dooms"
        );
    }
    println!(
        "\npessimism trades aborted work (dooms/lost cycles) for waiting \
         (self-aborts); which wins depends on the contention profile (§5.1)."
    );
}
