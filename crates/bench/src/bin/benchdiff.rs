//! benchdiff — counter-based regression gate between two checked-in BENCH
//! JSON files (`benchdiff OLD.json NEW.json`).
//!
//! Every `BENCH_PRn.json` in this repo is hand-printed JSON whose leaves
//! are `"name": number` pairs. Rather than vendoring a JSON parser for a
//! CI gate, this bin lexically collects those pairs (summing duplicates,
//! so per-row counters aggregate across thread counts and workloads) and
//! compares the **protocol counters** that appear in both files.
//!
//! ns/op numbers are deliberately NOT gated: the bench hosts are 1-CPU
//! containers where run-to-run spread has been measured at ~38%, so a
//! wall-clock gate would be a coin flip. Counters — commits, lock spins,
//! lane entries, dooms — are deterministic for a fixed workload shape and
//! are where a protocol regression actually shows up.
//!
//! Rules:
//! * A contention counter present in both files may not grow past
//!   `old * RATIO_LIMIT + ABS_SLACK` (slack absorbs 0 → tiny-number noise).
//! * An amortization leaf present in the NEW file may not exceed its
//!   absolute ceiling — these are per-transaction protocol counts whose
//!   correct value is a workload constant (e.g. a repeat-key read txn runs
//!   zero open-nested commits), so no old-file baseline is needed.
//! * Successive PRs often measure *different* benches; if the files share
//!   no counter keys the gate passes with a note — it is a ratchet where
//!   comparable, not a straitjacket.
//!
//! Exit status: 0 clean or incomparable, 1 regression, 2 usage/IO error.

use std::process::ExitCode;

/// Counters gated when present in both files. Throughput counters like
/// `commits` are reported but not gated (workload sizes differ across PRs).
const GATED: [&str; 4] = [
    "var_lock_spins",
    "stripe_lock_spins",
    "global_stripe_entries",
    "dooms_issued",
];
const REPORTED: [&str; 3] = ["commits", "lane_entries", "lane_free_commits"];
const RATIO_LIMIT: f64 = 2.0;
const ABS_SLACK: f64 = 100.0;

/// Absolute ceilings on per-transaction amortization leaves (PR 8). The
/// lexical collector SUMS a leaf across rows; the sweep emits each
/// `repeat_*` leaf for 6 cells (ops_per_txn 1/16/64 × two backends), so a
/// per-cell budget of ≤2 open commits and ≤0.5 excess acquisitions gives
/// the totals below. Checked against the NEW file only.
/// PR 9 adds the snapshot-read guarantees: aborts and semantic-lock
/// acquisitions inside snapshot windows are zero **by construction** (not
/// a tuning target), and chain-truncation fallbacks are a bounded escape
/// hatch — each leaf appears once as a whole-file summary in
/// BENCH_PR9.json, so no cross-row summing slack is needed.
/// PR 10 gates the dimensional metrics layer: the warm emission loop must
/// allocate exactly zero times (`metrics_alloc_count` — a discipline, not
/// a tuning target), and the enabled/disabled ns-per-txn ratio, SUMMED by
/// the collector across the 4 thread rows, must stay under 12.0 (avg 3×
/// per row — generous, because 1-CPU wall-clock carries ~38% noise; the
/// real on-cost is a slab increment per site).
const CEILINGS: [(&str, f64); 7] = [
    ("repeat_open_commits_per_txn", 12.0),
    ("repeat_excess_lock_acquisitions_per_txn", 3.0),
    ("snapshot_abort_count", 0.0),
    ("snapshot_lock_acquisitions", 0.0),
    ("snapshot_fallback_rate", 0.05),
    ("metrics_alloc_count", 0.0),
    ("metrics_on_off_ratio", 12.0),
];

/// Collect every `"key": <number>` pair in `src`, summing repeats.
fn numeric_leaves(src: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let Some(close) = src[i + 1..].find('"') else {
            break;
        };
        let key = &src[i + 1..i + 1 + close];
        i += close + 2;
        // Skip whitespace; a key is a string followed by ':'.
        let rest = src[i..].trim_start();
        let Some(after_colon) = rest.strip_prefix(':') else {
            continue;
        };
        let val = after_colon.trim_start();
        let end = val
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
            .unwrap_or(val.len());
        if end == 0 {
            continue;
        }
        if let Ok(n) = val[..end].parse::<f64>() {
            match out.iter_mut().find(|(k, _)| k == key) {
                Some((_, sum)) => *sum += n,
                None => out.push((key.to_string(), n)),
            }
        }
    }
    out
}

fn lookup(leaves: &[(String, f64)], key: &str) -> Option<f64> {
    leaves.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, old_path, new_path] = &args[..] else {
        eprintln!("usage: benchdiff OLD.json NEW.json");
        return ExitCode::from(2);
    };
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("benchdiff: cannot read {p}: {e}");
            None
        }
    };
    let (Some(old_src), Some(new_src)) = (read(old_path), read(new_path)) else {
        return ExitCode::from(2);
    };
    let old = numeric_leaves(&old_src);
    let new = numeric_leaves(&new_src);

    println!("benchdiff: {old_path} -> {new_path}");
    let mut compared = 0;
    let mut regressions = 0;
    for key in GATED {
        let (Some(o), Some(n)) = (lookup(&old, key), lookup(&new, key)) else {
            continue;
        };
        compared += 1;
        let limit = o * RATIO_LIMIT + ABS_SLACK;
        let verdict = if n > limit { "REGRESSION" } else { "ok" };
        if n > limit {
            regressions += 1;
        }
        println!("  [gated]    {key}: {o} -> {n} (limit {limit:.0}) {verdict}");
    }
    for (key, ceiling) in CEILINGS {
        let Some(n) = lookup(&new, key) else {
            continue;
        };
        compared += 1;
        let verdict = if n > ceiling { "REGRESSION" } else { "ok" };
        if n > ceiling {
            regressions += 1;
        }
        println!("  [ceiling]  {key}: {n} (ceiling {ceiling}) {verdict}");
    }
    for key in REPORTED {
        if let (Some(o), Some(n)) = (lookup(&old, key), lookup(&new, key)) {
            println!("  [reported] {key}: {o} -> {n}");
        }
    }
    if compared == 0 {
        println!(
            "  no shared protocol counters (the two PRs measured different benches); \
             nothing to gate — pass"
        );
        return ExitCode::SUCCESS;
    }
    if regressions > 0 {
        eprintln!("benchdiff: {regressions} counter regression(s)");
        return ExitCode::from(1);
    }
    println!("  {compared} gated counter(s) within limits");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_sum_duplicates_and_skip_strings() {
        let src = r#"{"a": 1, "note": "x: 9", "nested": {"a": 2.5, "b": -3}}"#;
        let leaves = numeric_leaves(src);
        assert_eq!(lookup(&leaves, "a"), Some(3.5));
        assert_eq!(lookup(&leaves, "b"), Some(-3.0));
        assert_eq!(lookup(&leaves, "note"), None);
    }

    #[test]
    fn ceiling_leaves_sum_across_sweep_cells() {
        let src = r#"[
            {"repeat_open_commits_per_txn": 0.0},
            {"repeat_open_commits_per_txn": 1.5},
            {"repeat_excess_lock_acquisitions_per_txn": 0.0}
        ]"#;
        let leaves = numeric_leaves(src);
        assert_eq!(lookup(&leaves, "repeat_open_commits_per_txn"), Some(1.5));
        let (key, ceiling) = CEILINGS[0];
        assert!(lookup(&leaves, key).unwrap() <= ceiling);
    }
}
