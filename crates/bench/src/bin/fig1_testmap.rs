//! Figure 1 — TestMap: 80% lookups / 10% inserts / 10% removals on one
//! shared `Map` from long transactions.
//!
//! Series: Java HashMap (locks), Atomos HashMap (bare transactional map —
//! header/size-field conflicts), Atomos TransactionalMap (semantic
//! concurrency control).

use bench::testmap::{LockMapFlavor, TestMapLock, TestMapTm, TmMapFlavor};
use bench::{print_figure, throughput, to_series, CPU_COUNTS};
use txcollections::TransactionalMap;
use txstruct::{LockHashMap, TxHashMap};

const TXNS_PER_CPU: usize = 400;
const SEED: u64 = 0xF161_ABCD; // deterministic workload seed

fn run_java(cpus: usize) -> (u64, u64, u64) {
    let w = TestMapLock {
        map: LockMapFlavor::Hash(LockHashMap::new()),
        txns_per_cpu: TXNS_PER_CPU,
        seed: SEED,
    };
    w.map.preload();
    let r = sim::run_lock(cpus, &w);
    (r.commits, r.makespan, r.blocked_cycles / 1000)
}

fn run_bare(cpus: usize) -> (u64, u64, u64) {
    let w = TestMapTm {
        map: TmMapFlavor::BareHash(TxHashMap::with_capacity(
            2 * bench::testmap::KEY_SPACE as usize,
        )),
        txns_per_cpu: TXNS_PER_CPU,
        seed: SEED,
    };
    w.map.preload();
    let r = sim::run_tm(cpus, &w);
    (
        r.commits,
        r.makespan,
        r.violations_memory + r.violations_semantic,
    )
}

fn run_wrapped(cpus: usize) -> (u64, u64, u64) {
    let w = TestMapTm {
        map: TmMapFlavor::WrappedHash(TransactionalMap::with_capacity(
            2 * bench::testmap::KEY_SPACE as usize,
        )),
        txns_per_cpu: TXNS_PER_CPU,
        seed: SEED,
    };
    w.map.preload();
    let r = sim::run_tm(cpus, &w);
    (
        r.commits,
        r.makespan,
        r.violations_memory + r.violations_semantic,
    )
}

fn main() {
    let (c, m, _) = run_java(1);
    let base = throughput(c, m);

    let sweep = |f: &dyn Fn(usize) -> (u64, u64, u64)| -> Vec<(usize, u64, u64, u64)> {
        CPU_COUNTS
            .iter()
            .map(|&p| {
                let (commits, makespan, conflicts) = f(p);
                (p, commits, makespan, conflicts)
            })
            .collect()
    };

    let series = vec![
        to_series("Java HashMap", base, sweep(&run_java)),
        to_series("Atomos HashMap", base, sweep(&run_bare)),
        to_series("Atomos TransactionalMap", base, sweep(&run_wrapped)),
    ];
    print_figure(
        "Figure 1: TestMap (speedup vs 1-CPU Java; cf = violations/blocked-kcycles)",
        &series,
    );
}
