//! txtop — conflict-provenance reporter over the STM trace layer.
//!
//! `top` for transactions: runs a contended collection soak with tracing
//! enabled (or validates a previously exported trace) and aggregates the
//! event stream into the questions an STM user actually asks:
//!
//! * **Who conflicts with whom?** Doom edges grouped by collection class,
//!   lock table and `(observation, effect)` mode pair — the dynamic
//!   conflict matrix, with the paper-table pair that justified each doom.
//! * **Where?** The hottest keys by stripe hash (doom edges + semantic
//!   lock acquisitions).
//! * **Why do attempts abort?** Cause breakdown, and how many doomed
//!   aborts carry culprit attribution.
//! * **Is the handler lane a bottleneck?** Lane occupancy: share of the
//!   traced interval during which some transaction held the lane.
//!
//! ```sh
//! cargo run -p bench --bin txtop -- --soak --threads 4 --txns 400 \
//!     --export-json trace.json
//! cargo run -p bench --bin txtop -- --validate trace.json
//! cargo run -p bench --bin txtop -- --metrics --threads 4 --txns 400
//! cargo run -p bench --bin txtop -- --metrics --validate
//! ```
//!
//! `--validate FILE` re-parses the exported JSON with a dependency-free
//! recursive-descent parser and checks the structural invariants the CI
//! traced-soak step relies on (schema version, event shapes, begin/terminal
//! pairing, at least one incompatible doom edge, abort/edge attribution
//! agreement). Exit status 0 = valid.
//!
//! `--metrics` runs the soak under the dimensional metrics layer
//! (`stm::metrics`) with the flight recorder armed, then renders the
//! windowed per-class/per-stripe doom-rate table, the hottest contended
//! stripes, and the latency percentiles (commit, semantic-lock wait, txn
//! wall, snapshot read). `--metrics --validate` instead takes two
//! Prometheus scrapes with soak activity between them and checks the
//! exposition is parseable, internally consistent (cumulative buckets,
//! `+Inf` == `_count`), and monotone series-by-series — the CI metrics
//! step. Exit status 0 = valid.

use std::collections::HashMap;
use std::process::ExitCode;
use stm::metrics::{self, MetricKind, ALL_HISTS};
use stm::trace::{self, TraceConfig, TraceEvent};
use stm::{atomic, atomic_read, global_stats, AbortCause};
use txcollections::TransactionalMap;

// ----------------------------------------------------------------------
// Soak workload: a contended map with long, read-heavy transactions
// ----------------------------------------------------------------------

const KEYS: u64 = 16;

/// Run `threads` workers, each committing `txns` long transactions (four
/// key-lock reads, one put) over a 16-key map — enough overlap that live
/// readers routinely hold key and size locks across another thread's commit.
/// With `repeat_keys` the four reads all hit one key, so every read after
/// the first is answered by the txn-local lock cache while the transaction
/// is still exposed to dooms — the traced regression shape for a cache
/// that outlives its locks. One extra observer thread runs the same reads
/// as snapshot transactions so the exported trace carries `snapshot_txn`
/// (and, when a chain outruns a pin, `snapshot_fallback`) events for the
/// validator to check.
fn soak_round(threads: u64, txns: u64, repeat_keys: bool) {
    let map: TransactionalMap<u64, u64> = TransactionalMap::new();
    atomic(|tx| {
        for k in 0..KEYS {
            map.put_discard(tx, k, 0);
        }
    });
    std::thread::scope(|s| {
        for t in 0..threads {
            let map = map.clone();
            s.spawn(move || {
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1) | 1;
                for _ in 0..txns {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let base = x % KEYS;
                    atomic(|tx| {
                        let mut acc = 0u64;
                        for i in 0..4 {
                            let k = if repeat_keys { base } else { (base + i) % KEYS };
                            acc = acc.wrapping_add(map.get(tx, &k).unwrap_or(0));
                        }
                        map.put_discard(tx, base, acc.wrapping_add(1));
                    });
                }
            });
        }
        {
            let map = map.clone();
            s.spawn(move || {
                for i in 0..txns {
                    let _ = atomic_read(|tx| map.get(tx, &(i % KEYS)));
                }
            });
        }
    });
}

// ----------------------------------------------------------------------
// Aggregation over a decoded snapshot
// ----------------------------------------------------------------------

fn report(snap: &trace::TraceSnapshot) {
    let mut causes: HashMap<&'static str, u64> = HashMap::new();
    let mut attributed = 0u64;
    let mut doomed_aborts = 0u64;
    // (class, lock, obs, effect) -> (edge count, distinct victims)
    type MatrixCell = (u64, Vec<u64>);
    let mut matrix: HashMap<(&'static str, &'static str, u8, u8), MatrixCell> = HashMap::new();
    let mut hot_keys: HashMap<u64, (u64, u64)> = HashMap::new(); // hash -> (dooms, acquisitions)
    let mut lane_open: HashMap<u64, u64> = HashMap::new();
    let mut lane_busy_ns = 0u64;
    let (mut min_ts, mut max_ts) = (u64::MAX, 0u64);
    let mut commits = 0u64;
    let (mut snapshot_txns, mut snapshot_served, mut snapshot_fallbacks) = (0u64, 0u64, 0u64);

    for e in &snap.events {
        match e {
            TraceEvent::TxnCommit { ts, .. } => {
                commits += 1;
                min_ts = min_ts.min(*ts);
                max_ts = max_ts.max(*ts);
            }
            TraceEvent::TxnBegin { ts, .. } => {
                min_ts = min_ts.min(*ts);
                max_ts = max_ts.max(*ts);
            }
            TraceEvent::TxnAbort {
                cause, culprit, ts, ..
            } => {
                *causes.entry(trace::cause_name(*cause)).or_default() += 1;
                if *cause == AbortCause::Doomed {
                    doomed_aborts += 1;
                    if *culprit != 0 {
                        attributed += 1;
                    }
                }
                min_ts = min_ts.min(*ts);
                max_ts = max_ts.max(*ts);
            }
            TraceEvent::DoomEdge {
                victim,
                class,
                kind,
                key_hash,
                obs,
                effect,
                ..
            } => {
                let cell = matrix
                    .entry((class.name(), kind.name(), *obs, *effect))
                    .or_default();
                cell.0 += 1;
                if !cell.1.contains(victim) {
                    cell.1.push(*victim);
                }
                if *key_hash != 0 {
                    hot_keys.entry(*key_hash).or_default().0 += 1;
                }
            }
            TraceEvent::SemLockAcquired { key_hash, .. } if *key_hash != 0 => {
                hot_keys.entry(*key_hash).or_default().1 += 1;
            }
            TraceEvent::LaneEnter { txn, ts, .. } => {
                lane_open.insert(*txn, *ts);
            }
            TraceEvent::LaneExit { txn, ts, .. } => {
                if let Some(start) = lane_open.remove(txn) {
                    lane_busy_ns += ts.saturating_sub(start);
                }
            }
            TraceEvent::SnapshotTxn { reads, .. } => {
                snapshot_txns += 1;
                snapshot_served += reads;
            }
            TraceEvent::SnapshotFallback { .. } => snapshot_fallbacks += 1,
            _ => {}
        }
    }

    println!("== txtop: conflict provenance ==");
    println!(
        "events: {} decoded, {} dropped (ring overflow)",
        snap.events.len(),
        snap.dropped
    );
    println!("commits: {commits}");
    println!(
        "snapshot txns: {snapshot_txns} ({snapshot_served} chain reads served, \
         {snapshot_fallbacks} fallbacks to the validated path)"
    );

    println!("\n-- abort causes --");
    let mut cause_rows: Vec<_> = causes.into_iter().collect();
    cause_rows.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    if cause_rows.is_empty() {
        println!("  (no aborts)");
    }
    for (cause, n) in cause_rows {
        println!("  {cause:<14} {n}");
    }
    println!("  doomed aborts with culprit attribution: {attributed}/{doomed_aborts}");

    println!("\n-- conflict matrix (doom edges by class, lock, mode pair) --");
    let mut rows: Vec<_> = matrix.into_iter().collect();
    rows.sort_by_key(|&(_, (n, _))| std::cmp::Reverse(n));
    if rows.is_empty() {
        println!("  (no semantic dooms traced)");
    }
    for ((class, lock, obs, effect), (n, victims)) in rows {
        println!(
            "  {class:<12} {lock:<9} {:<7} -x- {:<12} {n:>5} edges, {} victims",
            trace::obs_name(obs),
            trace::effect_name(effect),
            victims.len()
        );
    }

    println!("\n-- hottest keys (by stripe hash) --");
    let mut keys: Vec<_> = hot_keys.into_iter().collect();
    keys.sort_by_key(|&(_, counts)| std::cmp::Reverse(counts));
    if keys.is_empty() {
        println!("  (no keyed events)");
    }
    for (hash, (dooms, acqs)) in keys.iter().take(5) {
        println!("  {hash:#018x}  {dooms} dooms, {acqs} lock acquisitions");
    }

    println!("\n-- handler lane --");
    let span = max_ts.saturating_sub(min_ts);
    if span > 0 {
        println!(
            "  occupancy: {:.1}% of the traced interval ({} ms busy / {} ms traced)",
            100.0 * lane_busy_ns as f64 / span as f64,
            lane_busy_ns / 1_000_000,
            span / 1_000_000
        );
    } else {
        println!("  (interval too short to estimate)");
    }
}

// ----------------------------------------------------------------------
// Dimensional metrics mode
// ----------------------------------------------------------------------

/// How many landed dooms on one `(class, stripe)` within the soak window
/// fire a flight-recorder dump.
const METRICS_DOOM_THRESHOLD: u64 = 16;

/// Run the soak under `stm::metrics` with the flight recorder armed, then
/// render the windowed doom-rate table, hottest stripes, and latency
/// percentiles.
fn run_metrics_soak(threads: u64, txns: u64, repeat_keys: bool) -> ExitCode {
    let cfg = metrics::FlightRecorderConfig {
        dir: std::env::temp_dir().join(format!("stm-flightrec-{}", std::process::id())),
        doom_threshold: METRICS_DOOM_THRESHOLD,
        ring_slots: 1 << 16,
    };
    let mut rec = match metrics::FlightRecorder::arm(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("txtop: cannot arm the flight recorder: {e}");
            return ExitCode::FAILURE;
        }
    };

    let before = metrics::window();
    // Same widening loop as --soak: a lucky serialized round on a 1-CPU
    // host may produce no semantic doom at all.
    let mut rounds = 0;
    loop {
        soak_round(threads, txns, repeat_keys);
        rounds += 1;
        let w = metrics::window().diff(&before);
        if w.kind_total(MetricKind::Doom) > 0 || rounds >= 10 {
            break;
        }
    }
    let w = metrics::window().diff(&before);
    let secs = (w.wall_ns() as f64 / 1e9).max(1e-9);

    println!("== txtop: dimensional metrics ==");
    println!(
        "window: {secs:.2}s over {rounds} round(s) ({threads} threads x {txns} txns), \
         {} dropped increments",
        w.dropped()
    );
    println!(
        "commits: {} ({:.0}/s), aborts: {} read-invalid, {} doomed, {} explicit",
        w.kind_total(MetricKind::Commit),
        w.kind_total(MetricKind::Commit) as f64 / secs,
        w.kind_total(MetricKind::AbortReadInvalid),
        w.kind_total(MetricKind::AbortDoomed),
        w.kind_total(MetricKind::AbortExplicit),
    );
    println!(
        "lock cache hits: {}, lane entries: {}, epoch pins: {}, snapshot fallbacks: {}",
        w.kind_total(MetricKind::CacheHit),
        w.kind_total(MetricKind::LaneEntry),
        w.kind_total(MetricKind::EpochPin),
        w.kind_total(MetricKind::SnapshotFallback),
    );

    println!("\n-- doom rate by class and stripe --");
    let dooms = w.by_class_stripe(MetricKind::Doom);
    if dooms.is_empty() {
        println!("  (no semantic dooms in the window)");
    }
    for &(class, stripe, n) in dooms.iter().take(10) {
        println!(
            "  {:<16} stripe {:<7} {n:>6} dooms  ({:.1}/s)",
            class.name(),
            metrics::stripe_label(stripe),
            n as f64 / secs
        );
    }

    println!("\n-- hottest contended stripes (blocked acquisitions) --");
    let blocked = w.by_class_stripe(MetricKind::StripeBlocked);
    if blocked.is_empty() {
        println!("  (no stripe ever blocked)");
    }
    for &(class, stripe, n) in blocked.iter().take(5) {
        println!(
            "  {:<16} stripe {:<7} {n:>6} blocked  ({:.1}/s)",
            class.name(),
            metrics::stripe_label(stripe),
            n as f64 / secs
        );
    }

    println!("\n-- latency percentiles (ns, log2 bucket upper bounds) --");
    println!(
        "  {:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "histogram", "count", "p50", "p90", "p99", "max"
    );
    for kind in ALL_HISTS {
        let h = w.histogram(kind);
        if h.count() == 0 {
            continue;
        }
        println!(
            "  {:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
            kind.name(),
            h.count(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.max
        );
    }

    println!("\n-- flight recorder --");
    match rec.poll() {
        Ok(Some(path)) => println!(
            "  doom threshold ({METRICS_DOOM_THRESHOLD}/window) crossed; dump: {}",
            path.display()
        ),
        Ok(None) => {
            println!("  no (class, stripe) crossed {METRICS_DOOM_THRESHOLD} dooms in the window")
        }
        Err(e) => {
            eprintln!("txtop: flight-recorder dump failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `--metrics --validate`: two cumulative Prometheus scrapes with soak
/// activity between them must parse, be internally consistent, and be
/// monotone per series.
fn run_metrics_validate(threads: u64, txns: u64) -> ExitCode {
    let guard = metrics::MetricsConfig::default().enable();
    soak_round(threads, txns, false);
    let first = metrics::window().to_prometheus();
    soak_round(threads, txns, false);
    let second = metrics::window().to_prometheus();
    drop(guard);
    match validate_prometheus(&first, &second) {
        Ok(summary) => {
            println!("txtop: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("txtop: prometheus exposition INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse one Prometheus text-exposition scrape into `(series, value)` rows
/// in file order, checking the structural grammar: `# TYPE` lines carry a
/// known type, sample lines are `name[{labels}] value`, no duplicate
/// series.
fn parse_prometheus(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut series: Vec<(String, f64)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(ty) = comment.trim_start().strip_prefix("TYPE ") {
                let mut it = ty.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
                let ty = it
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE {name} without a type"))?;
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty) {
                    return Err(format!("line {lineno}: unknown type \"{ty}\" for {name}"));
                }
            }
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {lineno}: sample without a value: {line:?}"));
        };
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: unparseable value {value:?}"))?;
        let shape_ok = match (name.find('{'), name.ends_with('}')) {
            (None, false) => !name.is_empty(),
            (Some(open), true) => open > 0,
            _ => false,
        };
        if !shape_ok {
            return Err(format!("line {lineno}: malformed series name {name:?}"));
        }
        if series.iter().any(|(s, _)| s == name) {
            return Err(format!("line {lineno}: duplicate series {name:?}"));
        }
        series.push((name.to_string(), value));
    }
    Ok(series)
}

/// Check two scrapes taken in order: each parses, histograms are
/// internally consistent in the later scrape (cumulative `le` buckets,
/// `+Inf` bucket equals `_count`), and every series present in the first
/// scrape is still present and did not decrease in the second.
fn validate_prometheus(first: &str, second: &str) -> Result<String, String> {
    let s1 = parse_prometheus(first)?;
    let s2 = parse_prometheus(second)?;

    if !s2.iter().any(|(n, _)| n.starts_with("stm_events_total{")) {
        return Err("no stm_events_total series after the soak".into());
    }

    // Cumulative buckets never decrease within a family (rows are in `le`
    // order in the exposition), and the +Inf bucket closes at _count.
    let mut last_bucket: HashMap<&str, f64> = HashMap::new();
    for (name, v) in &s2 {
        if let Some(split) = name.find("_bucket{le=") {
            let family = &name[..split];
            if let Some(prev) = last_bucket.get(family) {
                if v < prev {
                    return Err(format!(
                        "{family}: bucket counts not cumulative ({prev} then {v})"
                    ));
                }
            }
            last_bucket.insert(family, *v);
        }
    }
    for (name, count) in &s2 {
        let Some(family) = name.strip_suffix("_count") else {
            continue;
        };
        let inf = format!("{family}_bucket{{le=\"+Inf\"}}");
        match s2.iter().find(|(n, _)| n == &inf) {
            Some((_, v)) if v == count => {}
            Some((_, v)) => {
                return Err(format!("{family}: +Inf bucket {v} != _count {count}"));
            }
            None => return Err(format!("{family}: histogram without an +Inf bucket")),
        }
    }

    for (name, v1) in &s1 {
        let Some((_, v2)) = s2.iter().find(|(n, _)| n == name) else {
            return Err(format!("series {name:?} vanished between scrapes"));
        };
        if v2 < v1 {
            return Err(format!("series {name:?} went backwards: {v1} -> {v2}"));
        }
    }

    Ok(format!(
        "prometheus ok: {} then {} series, parseable, cumulative, monotone",
        s1.len(),
        s2.len()
    ))
}

// ----------------------------------------------------------------------
// Minimal JSON model + recursive-descent parser (no serde by design)
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("json parse error at byte {}: {what}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("json parse error at byte {start}: bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            self.pos += 4;
                            out.push(hex.unwrap_or('\u{FFFD}'));
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through byte-wise.
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return self.err("unterminated string"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return self.err("trailing garbage");
        }
        Ok(v)
    }
}

// ----------------------------------------------------------------------
// Validation of an exported trace
// ----------------------------------------------------------------------

const KINDS: &[&str] = &[
    "txn_begin",
    "txn_commit",
    "txn_abort",
    "frame_retry",
    "open_commit",
    "open_retry",
    "lane_enter",
    "lane_exit",
    "var_lock_spin",
    "sem_lock_blocked",
    "sem_lock_acquired",
    "sem_lock_released",
    "doom_edge",
    "open_flattened",
    "lock_cache_hit",
    "snapshot_txn",
    "snapshot_fallback",
];

fn require_num(ev: &Json, field: &str, i: usize) -> Result<f64, String> {
    ev.get(field)
        .and_then(Json::num)
        .ok_or_else(|| format!("event {i}: missing numeric field \"{field}\""))
}

fn require_str<'j>(ev: &'j Json, field: &str, i: usize) -> Result<&'j str, String> {
    ev.get(field)
        .and_then(Json::str)
        .ok_or_else(|| format!("event {i}: missing string field \"{field}\""))
}

fn validate(text: &str) -> Result<String, String> {
    let root = Parser::new(text).parse()?;
    let version = root
        .get("version")
        .and_then(Json::num)
        .ok_or("missing \"version\"")?;
    if version != 1.0 {
        return Err(format!("unsupported trace version {version}"));
    }
    let dropped = root
        .get("dropped")
        .and_then(Json::num)
        .ok_or("missing \"dropped\"")? as u64;
    let events = match root.get("events") {
        Some(Json::Arr(evs)) => evs,
        _ => return Err("missing \"events\" array".into()),
    };

    let mut begins: HashMap<u64, u64> = HashMap::new();
    let mut terminals: HashMap<u64, u64> = HashMap::new();
    // victim -> doomers seen in edges; victim -> culprit claimed by aborts.
    let mut edge_doomers: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut doomed_culprits: HashMap<u64, u64> = HashMap::new();
    let mut incompatible_edges = 0u64;
    let mut last_seq = 0u64;
    // Snapshot lifecycle: a snapshot_txn attempt must end in a commit; a
    // snapshot_fallback attempt is abandoned and must end as an *explicit*
    // abort with no culprit (a fallback is not a doomed abort — it re-runs
    // under a fresh validated attempt).
    let mut snapshot_commits: Vec<u64> = Vec::new();
    let mut snapshot_fallbacks: Vec<u64> = Vec::new();
    let mut commit_txns: Vec<u64> = Vec::new();
    let mut plain_explicit_aborts: Vec<u64> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let kind = require_str(ev, "kind", i)?;
        if !KINDS.contains(&kind) {
            return Err(format!("event {i}: unknown kind \"{kind}\""));
        }
        let seq = require_num(ev, "seq", i)? as u64;
        if seq <= last_seq {
            return Err(format!("event {i}: seq {seq} not strictly increasing"));
        }
        last_seq = seq;
        match kind {
            "txn_begin" => {
                let txn = require_num(ev, "txn", i)? as u64;
                *begins.entry(txn).or_default() += 1;
            }
            "txn_commit" => {
                let txn = require_num(ev, "txn", i)? as u64;
                *terminals.entry(txn).or_default() += 1;
                commit_txns.push(txn);
            }
            "txn_abort" => {
                let txn = require_num(ev, "txn", i)? as u64;
                let culprit = require_num(ev, "culprit", i)? as u64;
                let cause = require_str(ev, "cause", i)?;
                if !["read_invalid", "doomed", "explicit"].contains(&cause) {
                    return Err(format!("event {i}: unknown abort cause \"{cause}\""));
                }
                if cause == "doomed" && culprit != 0 {
                    doomed_culprits.insert(txn, culprit);
                }
                if cause == "explicit" && culprit == 0 {
                    plain_explicit_aborts.push(txn);
                }
                *terminals.entry(txn).or_default() += 1;
            }
            "doom_edge" => {
                let doomer = require_num(ev, "doomer", i)? as u64;
                let victim = require_num(ev, "victim", i)? as u64;
                require_num(ev, "key_hash", i)?;
                let class = require_str(ev, "class", i)?;
                let lock = require_str(ev, "lock", i)?;
                let obs = require_str(ev, "obs", i)?;
                let effect = require_str(ev, "effect", i)?;
                if class.is_empty() || class == "?" {
                    return Err(format!("event {i}: doom edge lost its class name"));
                }
                if !["key", "size", "empty", "endpoint", "range", "full"].contains(&lock) {
                    return Err(format!("event {i}: unknown lock table \"{lock}\""));
                }
                if !trace::OBS_NAMES.contains(&obs) {
                    return Err(format!("event {i}: unknown obs mode \"{obs}\""));
                }
                if !trace::EFFECT_NAMES.contains(&effect) {
                    return Err(format!("event {i}: unknown effect \"{effect}\""));
                }
                match ev.get("compatible") {
                    Some(Json::Bool(false)) => incompatible_edges += 1,
                    Some(Json::Bool(true)) => {
                        return Err(format!(
                            "event {i}: a landed doom edge claims a compatible mode pair"
                        ))
                    }
                    _ => return Err(format!("event {i}: missing \"compatible\"")),
                }
                edge_doomers.entry(victim).or_default().push(doomer);
            }
            "sem_lock_acquired" | "sem_lock_released" => {
                require_num(ev, "txn", i)?;
                require_str(ev, "class", i)?;
                require_str(ev, "lock", i)?;
            }
            "open_flattened" => {
                require_num(ev, "txn", i)?;
            }
            "lock_cache_hit" => {
                require_num(ev, "txn", i)?;
                require_num(ev, "key_hash", i)?;
                require_str(ev, "class", i)?;
                require_str(ev, "lock", i)?;
            }
            "snapshot_txn" => {
                let txn = require_num(ev, "txn", i)? as u64;
                require_num(ev, "reads", i)?;
                snapshot_commits.push(txn);
            }
            "snapshot_fallback" => {
                let txn = require_num(ev, "txn", i)? as u64;
                if snapshot_commits.contains(&txn) {
                    return Err(format!(
                        "attempt {txn}: both completed as a snapshot and fell back"
                    ));
                }
                snapshot_fallbacks.push(txn);
            }
            _ => {}
        }
    }

    // Begin/terminal pairing is only exact when nothing was dropped.
    if dropped == 0 {
        for (txn, n) in &begins {
            if *n != 1 || terminals.get(txn) != Some(&1) {
                return Err(format!(
                    "attempt {txn}: begins={n}, terminals={:?} (dangling or doubled)",
                    terminals.get(txn)
                ));
            }
        }
        for txn in terminals.keys() {
            if !begins.contains_key(txn) {
                return Err(format!("attempt {txn}: terminal event without a begin"));
            }
        }
        for txn in &snapshot_commits {
            if !commit_txns.contains(txn) {
                return Err(format!(
                    "attempt {txn}: snapshot_txn without a txn_commit terminal"
                ));
            }
        }
        for txn in &snapshot_fallbacks {
            if !plain_explicit_aborts.contains(txn) {
                return Err(format!(
                    "attempt {txn}: snapshot_fallback must terminate as an explicit abort \
                     with no culprit (a fallback is not a doomed abort)"
                ));
            }
        }
    }

    if incompatible_edges == 0 {
        return Err("no doom edge recorded — the soak produced no semantic conflict".into());
    }

    // Where both the edge and the victim's abort were captured, the abort's
    // culprit must be one of the doomers the edges name.
    for (victim, culprit) in &doomed_culprits {
        if let Some(doomers) = edge_doomers.get(victim) {
            if !doomers.contains(culprit) {
                return Err(format!(
                    "attempt {victim}: abort blames {culprit}, but its edges name {doomers:?}"
                ));
            }
        }
    }

    Ok(format!(
        "valid: {} events ({dropped} dropped), {incompatible_edges} doom edges, \
         {} attributed doomed aborts, {} snapshot txns ({} fallbacks)",
        events.len(),
        doomed_culprits.len(),
        snapshot_commits.len(),
        snapshot_fallbacks.len()
    ))
}

// ----------------------------------------------------------------------
// Entry point
// ----------------------------------------------------------------------

fn usage() -> ExitCode {
    eprintln!(
        "usage: txtop --soak [--threads N] [--txns N] [--repeat-keys] [--export-json FILE]\n\
        \x20      txtop --validate FILE\n\
        \x20      txtop --metrics [--threads N] [--txns N] [--repeat-keys]\n\
        \x20      txtop --metrics --validate [--threads N] [--txns N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = None;
    let mut threads = 4u64;
    let mut txns = 400u64;
    let mut export: Option<String> = None;
    let mut validate_file: Option<String> = None;
    let mut repeat_keys = false;

    let mut metrics_validate = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--soak" => mode = Some("soak"),
            "--metrics" => mode = Some("metrics"),
            "--validate" if mode == Some("metrics") => metrics_validate = true,
            "--validate" => {
                mode = Some("validate");
                validate_file = it.next().cloned();
            }
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).unwrap_or(threads),
            "--txns" => txns = it.next().and_then(|v| v.parse().ok()).unwrap_or(txns),
            "--repeat-keys" => repeat_keys = true,
            "--export-json" => export = it.next().cloned(),
            _ => return usage(),
        }
    }

    match mode {
        Some("soak") => {
            let before = global_stats();
            // Generous rings: the report is more useful when lifecycle
            // events survive alongside the (rarer) doom edges.
            let guard = TraceConfig {
                ring_slots: 1 << 16,
            }
            .enable();
            // Single-CPU hosts can get lucky and serialize a small round
            // without a single live-across-commit window; widen until the
            // trace shows at least one semantic doom.
            let mut rounds = 0;
            loop {
                soak_round(threads, txns, repeat_keys);
                rounds += 1;
                let snap = trace::snapshot();
                let has_edge = snap
                    .events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::DoomEdge { .. }));
                if has_edge || rounds >= 10 {
                    break;
                }
            }
            let snap = trace::snapshot();
            drop(guard);
            let d = global_stats().since(&before);
            println!(
                "soak: {threads} threads x {txns} txns x {rounds} round(s), \
                 {} commits, {} doomed aborts (stats)",
                d.commits,
                d.dooms_absorbed()
            );
            report(&snap);
            if let Some(path) = export {
                let json = snap.to_json();
                if let Err(e) = std::fs::write(&path, &json) {
                    eprintln!("txtop: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("\nexported {} bytes to {path}", json.len());
            }
            ExitCode::SUCCESS
        }
        Some("metrics") => {
            if metrics_validate {
                run_metrics_validate(threads, txns)
            } else {
                run_metrics_soak(threads, txns, repeat_keys)
            }
        }
        Some("validate") => {
            let Some(path) = validate_file else {
                return usage();
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("txtop: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match validate(&text) {
                Ok(summary) => {
                    println!("txtop: {path}: {summary}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("txtop: {path}: INVALID: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_scalars_and_nesting() {
        let j = Parser::new(r#"{"a":[1,2.5,-3],"b":"x\"y","c":true,"d":null}"#)
            .parse()
            .unwrap();
        assert_eq!(
            j.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-3.0)
            ]))
        );
        assert_eq!(j.get("b").and_then(Json::str), Some("x\"y"));
        assert_eq!(j.get("c"), Some(&Json::Bool(true)));
        assert_eq!(j.get("d"), Some(&Json::Null));
        assert!(Parser::new("{\"a\":1,}").parse().is_err());
        assert!(Parser::new("[1 2]").parse().is_err());
    }

    #[test]
    fn validate_accepts_a_wellformed_trace() {
        let good = r#"{"version":1,"dropped":0,"events":[
            {"kind":"txn_begin","seq":1,"txn":10,"ts":5},
            {"kind":"txn_begin","seq":2,"txn":11,"ts":6},
            {"kind":"sem_lock_acquired","seq":3,"txn":10,"class":"map","lock":"key","key_hash":99,"ts":7},
            {"kind":"doom_edge","seq":4,"doomer":11,"victim":10,"class":"map","lock":"key","key_hash":99,"obs":"Key","effect":"KeyWrite","compatible":false},
            {"kind":"txn_commit","seq":5,"txn":11,"ts":8},
            {"kind":"txn_abort","seq":6,"txn":10,"cause":"doomed","culprit":11,"ts":9},
            {"kind":"txn_begin","seq":7,"txn":20,"ts":10},
            {"kind":"snapshot_txn","seq":8,"txn":20,"reads":4,"ts":11},
            {"kind":"txn_commit","seq":9,"txn":20,"ts":12},
            {"kind":"txn_begin","seq":10,"txn":21,"ts":13},
            {"kind":"snapshot_fallback","seq":11,"txn":21,"ts":14},
            {"kind":"txn_abort","seq":12,"txn":21,"cause":"explicit","culprit":0,"ts":15}
        ]}"#;
        let summary = validate(good).unwrap();
        assert!(summary.contains("1 doom edges"), "{summary}");
        assert!(
            summary.contains("1 snapshot txns (1 fallbacks)"),
            "{summary}"
        );
    }

    #[test]
    fn validate_rejects_broken_snapshot_lifecycles() {
        // A snapshot that "completed" but then aborted: the never-abort
        // guarantee was violated somewhere.
        let aborted_snapshot = r#"{"version":1,"dropped":0,"events":[
            {"kind":"doom_edge","seq":1,"doomer":11,"victim":10,"class":"map","lock":"key","key_hash":0,"obs":"Key","effect":"KeyWrite","compatible":false},
            {"kind":"txn_begin","seq":2,"txn":20,"ts":10},
            {"kind":"snapshot_txn","seq":3,"txn":20,"reads":4,"ts":11},
            {"kind":"txn_abort","seq":4,"txn":20,"cause":"explicit","culprit":0,"ts":12}
        ]}"#;
        assert!(validate(aborted_snapshot)
            .unwrap_err()
            .contains("without a txn_commit"));

        // A fallback whose teardown was recorded as a *doomed* abort:
        // fallbacks must never enter the doom accounting.
        let doomed_fallback = r#"{"version":1,"dropped":0,"events":[
            {"kind":"doom_edge","seq":1,"doomer":11,"victim":21,"class":"map","lock":"key","key_hash":0,"obs":"Key","effect":"KeyWrite","compatible":false},
            {"kind":"txn_begin","seq":2,"txn":21,"ts":10},
            {"kind":"snapshot_fallback","seq":3,"txn":21,"ts":11},
            {"kind":"txn_abort","seq":4,"txn":21,"cause":"doomed","culprit":11,"ts":12}
        ]}"#;
        assert!(validate(doomed_fallback)
            .unwrap_err()
            .contains("not a doomed abort"));

        // One attempt cannot both serve a snapshot and fall back.
        let both = r#"{"version":1,"dropped":0,"events":[
            {"kind":"snapshot_txn","seq":1,"txn":22,"reads":1,"ts":10},
            {"kind":"snapshot_fallback","seq":2,"txn":22,"ts":11}
        ]}"#;
        assert!(validate(both).unwrap_err().contains("both completed"));
    }

    #[test]
    fn validate_rejects_broken_traces() {
        // Dangling begin.
        let dangling = r#"{"version":1,"dropped":0,"events":[
            {"kind":"txn_begin","seq":1,"txn":10,"ts":5},
            {"kind":"doom_edge","seq":2,"doomer":11,"victim":10,"class":"map","lock":"key","key_hash":0,"obs":"Key","effect":"KeyWrite","compatible":false}
        ]}"#;
        assert!(validate(dangling).unwrap_err().contains("dangling"));

        // Abort blames a transaction no edge names.
        let misattributed = r#"{"version":1,"dropped":0,"events":[
            {"kind":"txn_begin","seq":1,"txn":10,"ts":5},
            {"kind":"doom_edge","seq":2,"doomer":11,"victim":10,"class":"map","lock":"key","key_hash":0,"obs":"Key","effect":"KeyWrite","compatible":false},
            {"kind":"txn_abort","seq":3,"txn":10,"cause":"doomed","culprit":77,"ts":9}
        ]}"#;
        assert!(validate(misattributed).unwrap_err().contains("blames 77"));

        // A compatible "doom" is a protocol bug by definition.
        let compat = r#"{"version":1,"dropped":0,"events":[
            {"kind":"doom_edge","seq":1,"doomer":11,"victim":10,"class":"map","lock":"key","key_hash":0,"obs":"Key","effect":"KeyWrite","compatible":true}
        ]}"#;
        assert!(validate(compat).unwrap_err().contains("compatible"));

        // No doom edge at all: the traced soak failed its purpose.
        let empty = r#"{"version":1,"dropped":0,"events":[]}"#;
        assert!(validate(empty).unwrap_err().contains("no doom edge"));
    }

    const SCRAPE_1: &str = "\
# HELP stm_events_total Dimensional STM runtime events.\n\
# TYPE stm_events_total counter\n\
stm_events_total{class=\"map\",stripe=\"3\",kind=\"doom\"} 4\n\
# TYPE stm_commit_latency_ns histogram\n\
stm_commit_latency_ns_bucket{le=\"1023\"} 2\n\
stm_commit_latency_ns_bucket{le=\"+Inf\"} 3\n\
stm_commit_latency_ns_sum 2400\n\
stm_commit_latency_ns_count 3\n";

    const SCRAPE_2: &str = "\
# HELP stm_events_total Dimensional STM runtime events.\n\
# TYPE stm_events_total counter\n\
stm_events_total{class=\"map\",stripe=\"3\",kind=\"doom\"} 9\n\
stm_events_total{class=\"map\",stripe=\"5\",kind=\"doom\"} 1\n\
# TYPE stm_commit_latency_ns histogram\n\
stm_commit_latency_ns_bucket{le=\"1023\"} 5\n\
stm_commit_latency_ns_bucket{le=\"+Inf\"} 7\n\
stm_commit_latency_ns_sum 7100\n\
stm_commit_latency_ns_count 7\n";

    #[test]
    fn prometheus_monotone_scrapes_validate() {
        let summary = validate_prometheus(SCRAPE_1, SCRAPE_2).unwrap();
        assert!(summary.contains("monotone"), "{summary}");
    }

    #[test]
    fn prometheus_validator_rejects_regressions() {
        // A counter going backwards between scrapes.
        assert!(validate_prometheus(SCRAPE_2, SCRAPE_1)
            .unwrap_err()
            .contains("went backwards"));

        // A series vanishing between scrapes.
        let missing = SCRAPE_2.replace(
            "stm_events_total{class=\"map\",stripe=\"5\",kind=\"doom\"} 1\n",
            "",
        );
        assert!(validate_prometheus(SCRAPE_2, &missing)
            .unwrap_err()
            .contains("vanished"));

        // +Inf bucket disagreeing with _count.
        let torn = SCRAPE_2.replace(
            "stm_commit_latency_ns_count 7",
            "stm_commit_latency_ns_count 9",
        );
        assert!(validate_prometheus(SCRAPE_1, &torn)
            .unwrap_err()
            .contains("+Inf"));

        // Non-cumulative buckets.
        let shrink = SCRAPE_2.replace(
            "stm_commit_latency_ns_bucket{le=\"+Inf\"} 7",
            "stm_commit_latency_ns_bucket{le=\"+Inf\"} 4",
        );
        assert!(validate_prometheus(SCRAPE_1, &shrink)
            .unwrap_err()
            .contains("cumulative"));

        // Lexical garbage.
        assert!(parse_prometheus("stm_events_total{unclosed 4\n").is_err());
        assert!(parse_prometheus("stm_events_total four\n").is_err());
        assert!(parse_prometheus("# TYPE stm_events_total frobnitz\n").is_err());
    }
}
