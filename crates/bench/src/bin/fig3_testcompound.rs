//! Figure 3 — TestCompound: two map operations separated by computation,
//! composed atomically.
//!
//! The Java version must hold one coarse lock across both operations *and*
//! the intermediate computation, so it stops scaling; the Atomos
//! TransactionalMap composes the operations in one transaction and scales.
//! (This is the composability argument: plain open nesting could not even
//! express this atomically.)

use bench::testmap::{LockMapFlavor, TestCompoundLock, TestCompoundTm, TmMapFlavor};
use bench::{print_figure, throughput, to_series, CPU_COUNTS};
use txcollections::TransactionalMap;
use txstruct::{LockHashMap, TxHashMap};

const TXNS_PER_CPU: usize = 300;
const SEED: u64 = 0xF163_0007;

fn run_java(cpus: usize) -> (u64, u64, u64) {
    let w = TestCompoundLock {
        map: LockMapFlavor::Hash(LockHashMap::new()),
        txns_per_cpu: TXNS_PER_CPU,
        seed: SEED,
    };
    w.map.preload();
    let r = sim::run_lock(cpus, &w);
    (r.commits, r.makespan, r.blocked_cycles / 1000)
}

fn run_bare(cpus: usize) -> (u64, u64, u64) {
    let w = TestCompoundTm {
        map: TmMapFlavor::BareHash(TxHashMap::with_capacity(
            2 * bench::testmap::KEY_SPACE as usize,
        )),
        txns_per_cpu: TXNS_PER_CPU,
        seed: SEED,
    };
    w.map.preload();
    let r = sim::run_tm(cpus, &w);
    (
        r.commits,
        r.makespan,
        r.violations_memory + r.violations_semantic,
    )
}

fn run_wrapped(cpus: usize) -> (u64, u64, u64) {
    let w = TestCompoundTm {
        map: TmMapFlavor::WrappedHash(TransactionalMap::with_capacity(
            2 * bench::testmap::KEY_SPACE as usize,
        )),
        txns_per_cpu: TXNS_PER_CPU,
        seed: SEED,
    };
    w.map.preload();
    let r = sim::run_tm(cpus, &w);
    (
        r.commits,
        r.makespan,
        r.violations_memory + r.violations_semantic,
    )
}

fn main() {
    let (c, m, _) = run_java(1);
    let base = throughput(c, m);

    let sweep = |f: &dyn Fn(usize) -> (u64, u64, u64)| -> Vec<(usize, u64, u64, u64)> {
        CPU_COUNTS
            .iter()
            .map(|&p| {
                let (commits, makespan, conflicts) = f(p);
                (p, commits, makespan, conflicts)
            })
            .collect()
    };

    let series = vec![
        to_series("Java HashMap (coarse)", base, sweep(&run_java)),
        to_series("Atomos HashMap", base, sweep(&run_bare)),
        to_series("Atomos TransactionalMap", base, sweep(&run_wrapped)),
    ];
    print_figure(
        "Figure 3: TestCompound (speedup vs 1-CPU Java; cf = violations/blocked-kcycles)",
        &series,
    );
}
