//! Figure 4 — SPECjbb2000 in the high-contention single-warehouse
//! configuration, five TPC-C style operations each run as one atomic
//! transaction.
//!
//! Series: Java (per-structure locks), Atomos Baseline (plain structures),
//! Atomos Open (open-nested counters), Atomos Transactional (+
//! TransactionalMap / TransactionalSortedMap on historyTable, orderTable,
//! newOrderTable).

use bench::{print_figure, throughput, to_series, CPU_COUNTS};
use jbb::{JbbLockWorkload, JbbTmWorkload, LockWarehouse, TmConfig, TmWarehouse, DEFAULT_THINK};

const TXNS_PER_CPU: usize = 96;
const SEED: u64 = 0xF164_0042;

fn run_java(cpus: usize) -> (u64, u64, u64) {
    let w = JbbLockWorkload {
        warehouse: LockWarehouse::new(),
        txns_per_cpu: TXNS_PER_CPU,
        seed: SEED,
        think: DEFAULT_THINK,
    };
    let r = sim::run_lock(cpus, &w);
    (r.commits, r.makespan, r.blocked_cycles / 1000)
}

fn run_tm(config: TmConfig, cpus: usize) -> (u64, u64, u64) {
    let w = JbbTmWorkload {
        warehouse: TmWarehouse::new(config),
        txns_per_cpu: TXNS_PER_CPU,
        seed: SEED,
        think: DEFAULT_THINK,
    };
    let r = sim::run_tm(cpus, &w);
    w.warehouse
        .check_invariants()
        .expect("warehouse invariants violated");
    (
        r.commits,
        r.makespan,
        r.violations_memory + r.violations_semantic,
    )
}

fn main() {
    let (c, m, _) = run_java(1);
    let base = throughput(c, m);

    let sweep = |f: &dyn Fn(usize) -> (u64, u64, u64)| -> Vec<(usize, u64, u64, u64)> {
        CPU_COUNTS
            .iter()
            .map(|&p| {
                let (commits, makespan, conflicts) = f(p);
                (p, commits, makespan, conflicts)
            })
            .collect()
    };

    let series = vec![
        to_series("Java", base, sweep(&run_java)),
        to_series(
            "Atomos Baseline",
            base,
            sweep(&|p| run_tm(TmConfig::Baseline, p)),
        ),
        to_series("Atomos Open", base, sweep(&|p| run_tm(TmConfig::Open, p))),
        to_series(
            "Atomos Transactional",
            base,
            sweep(&|p| run_tm(TmConfig::Transactional, p)),
        ),
    ];
    print_figure(
        "Figure 4: SPECjbb2000, single warehouse (speedup vs 1-CPU Java; cf = violations/blocked-kcycles)",
        &series,
    );
}
