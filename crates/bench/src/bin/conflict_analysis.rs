//! TAPE-style conflict analysis of the SPECjbb workload (paper §6.3).
//!
//! The paper: "Using techniques described in [TAPE], we were able to
//! identify several global counters such as the District.nextOrder ID
//! generator as the main sources of lost work due to conflicts." This
//! binary reproduces that methodology: it attributes every memory violation
//! in the simulator to the shared variable that caused it and prints the
//! top sources per configuration — showing the counters dominating the
//! Baseline, the maps dominating Open, and almost nothing left for
//! Transactional.

use jbb::{JbbTmWorkload, TmConfig, TmWarehouse, DEFAULT_THINK};

const CPUS: usize = 32;
const TXNS_PER_CPU: usize = 96;

fn analyze(config: TmConfig) {
    let w = JbbTmWorkload {
        warehouse: TmWarehouse::new(config),
        txns_per_cpu: TXNS_PER_CPU,
        seed: 0xC0FF_EE00,
        think: DEFAULT_THINK,
    };
    let r = sim::run_tm(CPUS, &w);
    println!(
        "\n{config:?}: {} commits, {} memory violations, {} semantic dooms, {} lost kcycles",
        r.commits,
        r.violations_memory,
        r.violations_semantic,
        r.lost_cycles / 1000
    );
    println!("  top conflict sources (lost kcycles):");
    for (name, lost) in r.top_conflict_sources(8) {
        println!("    {:>10}  {}", lost / 1000, name);
    }
}

fn main() {
    println!("Conflict attribution for single-warehouse SPECjbb2000 at {CPUS} CPUs");
    analyze(TmConfig::Baseline);
    analyze(TmConfig::Open);
    analyze(TmConfig::Transactional);
}
