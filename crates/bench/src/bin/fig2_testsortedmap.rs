//! Figure 2 — TestSortedMap: TestMap with point lookups replaced by
//! `subMap` range lookups (median of the returned range).
//!
//! Series: Java TreeMap (locks), Atomos TreeMap (bare transactional
//! red-black tree — rebalancing conflicts), Atomos TransactionalSortedMap.

use bench::testmap::{LockMapFlavor, TestMapLock, TestMapTm, TmMapFlavor};
use bench::{print_figure, throughput, to_series, CPU_COUNTS};
use txcollections::TransactionalSortedMap;
use txstruct::{LockTreeMap, TxTreeMap};

const TXNS_PER_CPU: usize = 300;
const SEED: u64 = 0xF162_0001;

fn run_java(cpus: usize) -> (u64, u64, u64) {
    let w = TestMapLock {
        map: LockMapFlavor::Tree(LockTreeMap::new()),
        txns_per_cpu: TXNS_PER_CPU,
        seed: SEED,
    };
    w.map.preload();
    let r = sim::run_lock(cpus, &w);
    (r.commits, r.makespan, r.blocked_cycles / 1000)
}

fn run_bare(cpus: usize) -> (u64, u64, u64) {
    let w = TestMapTm {
        map: TmMapFlavor::BareTree(TxTreeMap::new()),
        txns_per_cpu: TXNS_PER_CPU,
        seed: SEED,
    };
    w.map.preload();
    let r = sim::run_tm(cpus, &w);
    (
        r.commits,
        r.makespan,
        r.violations_memory + r.violations_semantic,
    )
}

fn run_wrapped(cpus: usize) -> (u64, u64, u64) {
    let w = TestMapTm {
        map: TmMapFlavor::WrappedTree(TransactionalSortedMap::new()),
        txns_per_cpu: TXNS_PER_CPU,
        seed: SEED,
    };
    w.map.preload();
    let r = sim::run_tm(cpus, &w);
    (
        r.commits,
        r.makespan,
        r.violations_memory + r.violations_semantic,
    )
}

fn main() {
    let (c, m, _) = run_java(1);
    let base = throughput(c, m);

    let sweep = |f: &dyn Fn(usize) -> (u64, u64, u64)| -> Vec<(usize, u64, u64, u64)> {
        CPU_COUNTS
            .iter()
            .map(|&p| {
                let (commits, makespan, conflicts) = f(p);
                (p, commits, makespan, conflicts)
            })
            .collect()
    };

    let series = vec![
        to_series("Java TreeMap", base, sweep(&run_java)),
        to_series("Atomos TreeMap", base, sweep(&run_bare)),
        to_series("Atomos Txnl SortedMap", base, sweep(&run_wrapped)),
    ];
    print_figure(
        "Figure 2: TestSortedMap (speedup vs 1-CPU Java; cf = violations/blocked-kcycles)",
        &series,
    );
}
