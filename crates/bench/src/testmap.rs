//! The TestMap / TestSortedMap / TestCompound micro-benchmark workloads
//! (paper §6.2, after Adl-Tabatabai et al.): multi-threaded access to a
//! single shared map, "a mixture of operations with a breakdown of 80%
//! lookups, 10% insertions, and 10% removals", each operation surrounded by
//! computation to emulate long-running transactions.

use jbb::TxnRng;
use sim::{LockRecorder, LockWorkload, TmWorkload};
use std::ops::Bound;
use stm::Txn;
use txcollections::{TransactionalMap, TransactionalSortedMap};
use txstruct::{LockHashMap, LockTreeMap, TxHashMap, TxTreeMap};

/// Key space of the shared map.
pub const KEY_SPACE: u64 = 4096;
/// Keys preloaded before measurement (half the key space).
pub const PRELOAD: u64 = KEY_SPACE / 2;
/// Surrounding computation per operation, in cycles. Chosen so that data-
/// structure work is small relative to the transaction body, as in the
/// paper's long-transaction setup (the op cost in TM mode — counted per
/// `TVar` access — tops out near 1.5k cycles for a range lookup).
pub const THINK: u64 = 20_000;
/// Virtual cost of one lock-based hash op (calibrated to the TM-mode
/// access-counted cost of the same operation).
pub const C_HASH: u64 = 60;
/// Virtual cost of one lock-based tree range lookup (descent + 16-wide
/// range walk, matching the TM-mode counted cost).
pub const C_TREE_RANGE: u64 = 600;
/// Virtual cost of one lock-based tree insert/remove.
pub const C_TREE_UPDATE: u64 = 250;
/// Width of the range queried by TestSortedMap's `subMap` lookup.
pub const RANGE_WIDTH: u64 = 16;

const MAP_LOCK: u64 = 1;

/// Which map implementation a TM-mode series uses.
pub enum TmMapFlavor {
    /// Bare transactional hash map ("Atomos HashMap").
    BareHash(TxHashMap<u64, u64>),
    /// Wrapped hash map ("Atomos TransactionalMap").
    WrappedHash(TransactionalMap<u64, u64>),
    /// Bare red-black tree ("Atomos TreeMap").
    BareTree(TxTreeMap<u64, u64>),
    /// Wrapped tree ("Atomos TransactionalSortedMap").
    WrappedTree(TransactionalSortedMap<u64, u64>),
}

impl TmMapFlavor {
    /// Preload with the standard keys (even keys in `0..KEY_SPACE`).
    pub fn preload(&self) {
        stm::atomic(|tx| match self {
            TmMapFlavor::BareHash(m) => {
                for k in 0..PRELOAD {
                    m.insert(tx, k * 2, k);
                }
            }
            TmMapFlavor::WrappedHash(m) => {
                for k in 0..PRELOAD {
                    m.put_discard(tx, k * 2, k);
                }
            }
            TmMapFlavor::BareTree(m) => {
                for k in 0..PRELOAD {
                    m.insert(tx, k * 2, k);
                }
            }
            TmMapFlavor::WrappedTree(m) => {
                for k in 0..PRELOAD {
                    m.put_discard(tx, k * 2, k);
                }
            }
        });
    }

    fn lookup(&self, tx: &mut Txn, k: u64) {
        match self {
            TmMapFlavor::BareHash(m) => {
                std::hint::black_box(m.get(tx, &k));
            }
            TmMapFlavor::WrappedHash(m) => {
                std::hint::black_box(m.get(tx, &k));
            }
            // TestSortedMap replaces point lookups with a subMap range
            // lookup, "taking the median key from the returned range".
            TmMapFlavor::BareTree(m) => {
                let hi = k + RANGE_WIDTH;
                let r = m.range_entries(tx, Bound::Included(&k), Bound::Excluded(&hi));
                std::hint::black_box(r.get(r.len() / 2).map(|e| e.0));
            }
            TmMapFlavor::WrappedTree(m) => {
                let r = m.range_entries(tx, Bound::Included(k), Bound::Excluded(k + RANGE_WIDTH));
                std::hint::black_box(r.get(r.len() / 2).map(|e| e.0));
            }
        }
    }

    fn insert(&self, tx: &mut Txn, k: u64, v: u64) {
        match self {
            TmMapFlavor::BareHash(m) => {
                m.insert(tx, k, v);
            }
            TmMapFlavor::WrappedHash(m) => {
                m.put(tx, k, v);
            }
            TmMapFlavor::BareTree(m) => {
                m.insert(tx, k, v);
            }
            TmMapFlavor::WrappedTree(m) => {
                m.put(tx, k, v);
            }
        }
    }

    fn remove(&self, tx: &mut Txn, k: u64) {
        match self {
            TmMapFlavor::BareHash(m) => {
                m.remove(tx, &k);
            }
            TmMapFlavor::WrappedHash(m) => {
                m.remove(tx, &k);
            }
            TmMapFlavor::BareTree(m) => {
                m.remove(tx, &k);
            }
            TmMapFlavor::WrappedTree(m) => {
                m.remove(tx, &k);
            }
        }
    }

    fn get_value(&self, tx: &mut Txn, k: u64) -> Option<u64> {
        match self {
            TmMapFlavor::BareHash(m) => m.get(tx, &k),
            TmMapFlavor::WrappedHash(m) => m.get(tx, &k),
            TmMapFlavor::BareTree(m) => m.get(tx, &k),
            TmMapFlavor::WrappedTree(m) => m.get(tx, &k),
        }
    }
}

/// The 80/10/10 one-op-per-transaction workload (Figures 1 and 2).
pub struct TestMapTm {
    /// Map under test.
    pub map: TmMapFlavor,
    /// Transactions per CPU.
    pub txns_per_cpu: usize,
    /// Seed.
    pub seed: u64,
}

impl TmWorkload for TestMapTm {
    fn txn_count(&self, _cpu: usize) -> usize {
        self.txns_per_cpu
    }

    fn run(&self, cpu: usize, seq: usize, tx: &mut Txn) {
        let mut rng = TxnRng::new(self.seed, cpu, seq);
        let roll = rng.below(100);
        let key = rng.below(KEY_SPACE);
        sim::think(THINK / 2);
        if roll < 80 {
            self.map.lookup(tx, key);
        } else if roll < 90 {
            self.map.insert(tx, key, roll);
        } else {
            self.map.remove(tx, key);
        }
        sim::think(THINK / 2);
    }
}

/// The compound workload (Figure 3): two operations on the shared map with
/// computation in between, composed atomically.
pub struct TestCompoundTm {
    /// Map under test.
    pub map: TmMapFlavor,
    /// Transactions per CPU.
    pub txns_per_cpu: usize,
    /// Seed.
    pub seed: u64,
}

impl TmWorkload for TestCompoundTm {
    fn txn_count(&self, _cpu: usize) -> usize {
        self.txns_per_cpu
    }

    fn run(&self, cpu: usize, seq: usize, tx: &mut Txn) {
        let mut rng = TxnRng::new(self.seed, cpu, seq);
        let k1 = rng.below(KEY_SPACE);
        let k2 = rng.below(KEY_SPACE);
        sim::think(THINK / 2);
        let v = self.map.get_value(tx, k1).unwrap_or(0);
        sim::think(THINK); // computation between the two operations
        self.map.insert(tx, k2, v + 1);
        sim::think(THINK / 2);
    }
}

/// Which lock-based map the "Java" series uses.
pub enum LockMapFlavor {
    /// `synchronized HashMap`.
    Hash(LockHashMap<u64, u64>),
    /// `synchronized TreeMap`.
    Tree(LockTreeMap<u64, u64>),
}

impl LockMapFlavor {
    /// Preload with the standard keys.
    pub fn preload(&self) {
        match self {
            LockMapFlavor::Hash(m) => {
                for k in 0..PRELOAD {
                    m.insert(k * 2, k);
                }
            }
            LockMapFlavor::Tree(m) => {
                for k in 0..PRELOAD {
                    m.insert(k * 2, k);
                }
            }
        }
    }

    fn lookup_cost(&self) -> u64 {
        match self {
            LockMapFlavor::Hash(_) => C_HASH,
            LockMapFlavor::Tree(_) => C_TREE_RANGE,
        }
    }

    fn update_cost(&self) -> u64 {
        match self {
            LockMapFlavor::Hash(_) => C_HASH,
            LockMapFlavor::Tree(_) => C_TREE_UPDATE,
        }
    }

    fn lookup(&self, k: u64) {
        match self {
            LockMapFlavor::Hash(m) => {
                std::hint::black_box(m.get(&k));
            }
            LockMapFlavor::Tree(m) => {
                let r = m.range_entries(Bound::Included(k), Bound::Excluded(k + RANGE_WIDTH));
                std::hint::black_box(r.get(r.len() / 2).map(|e| e.0));
            }
        }
    }

    fn insert(&self, k: u64, v: u64) {
        match self {
            LockMapFlavor::Hash(m) => {
                m.insert(k, v);
            }
            LockMapFlavor::Tree(m) => {
                m.insert(k, v);
            }
        }
    }

    fn remove(&self, k: u64) {
        match self {
            LockMapFlavor::Hash(m) => {
                m.remove(&k);
            }
            LockMapFlavor::Tree(m) => {
                m.remove(&k);
            }
        }
    }
}

/// The Java 80/10/10 workload: the map lock is held only for the operation
/// itself (fine-grained in time), so it scales.
pub struct TestMapLock {
    /// Map under test.
    pub map: LockMapFlavor,
    /// Transactions per CPU.
    pub txns_per_cpu: usize,
    /// Seed.
    pub seed: u64,
}

impl LockWorkload for TestMapLock {
    fn txn_count(&self, _cpu: usize) -> usize {
        self.txns_per_cpu
    }

    fn run(&self, cpu: usize, seq: usize, rec: &mut LockRecorder) {
        let mut rng = TxnRng::new(self.seed, cpu, seq);
        let roll = rng.below(100);
        let key = rng.below(KEY_SPACE);
        rec.work(THINK / 2);
        if roll < 80 {
            rec.critical(MAP_LOCK, self.map.lookup_cost(), || self.map.lookup(key));
        } else if roll < 90 {
            rec.critical(MAP_LOCK, self.map.update_cost(), || {
                self.map.insert(key, roll)
            });
        } else {
            rec.critical(MAP_LOCK, self.map.update_cost(), || self.map.remove(key));
        }
        rec.work(THINK / 2);
    }
}

/// The Java compound workload (Figure 3): "a coarse grained lock is used to
/// ensure that two operations act as a single compound operation" — the lock
/// is held across the intermediate computation, serializing it.
pub struct TestCompoundLock {
    /// Map under test.
    pub map: LockMapFlavor,
    /// Transactions per CPU.
    pub txns_per_cpu: usize,
    /// Seed.
    pub seed: u64,
}

impl LockWorkload for TestCompoundLock {
    fn txn_count(&self, _cpu: usize) -> usize {
        self.txns_per_cpu
    }

    fn run(&self, cpu: usize, seq: usize, rec: &mut LockRecorder) {
        let mut rng = TxnRng::new(self.seed, cpu, seq);
        let k1 = rng.below(KEY_SPACE);
        let k2 = rng.below(KEY_SPACE);
        rec.work(THINK / 2);
        let cost = self.map.update_cost();
        // One critical section spanning op + think + op.
        rec.critical(MAP_LOCK, cost + THINK + cost, || {
            let v = match &self.map {
                LockMapFlavor::Hash(m) => m.get(&k1).unwrap_or(0),
                LockMapFlavor::Tree(m) => m.get(&k1).unwrap_or(0),
            };
            self.map.insert(k2, v + 1);
        });
        rec.work(THINK / 2);
    }
}
