//! # bench — the figure/table harness
//!
//! One binary per figure of the paper's evaluation (§6):
//!
//! * `fig1_testmap` — TestMap (Figure 1)
//! * `fig2_testsortedmap` — TestSortedMap (Figure 2)
//! * `fig3_testcompound` — TestCompound (Figure 3)
//! * `fig4_specjbb` — single-warehouse SPECjbb2000 (Figure 4)
//!
//! plus Criterion microbenches (`stm_ops`, `collection_overhead`) and the
//! ablations discussed in the paper's text (`ablation_segmented`,
//! `ablation_isempty`, `ablation_putreturn`).
//!
//! Speedup convention matches the paper: each series at `p` CPUs is
//! normalized to the **1-CPU Java (lock) configuration** of the same
//! benchmark, by throughput: `speedup = (txns/cycle at p) / (txns/cycle of
//! 1-CPU Java)`.

pub mod testmap;

/// The CPU counts of the paper's x-axes.
pub const CPU_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// A measured series: name plus speedup per CPU count.
pub struct Series {
    /// Legend label (matches the paper's figure legends).
    pub name: String,
    /// One row per CPU count.
    pub rows: Vec<SeriesRow>,
}

/// One measured point.
pub struct SeriesRow {
    /// Virtual CPU count.
    pub cpus: usize,
    /// Speedup vs the 1-CPU lock baseline.
    pub speedup: f64,
    /// Committed transactions.
    pub commits: u64,
    /// Violations (TM) or blocked kilocycles (locks) — context-dependent.
    pub conflicts: u64,
    /// Virtual-cycle makespan.
    pub makespan: u64,
}

/// Render the figure as an aligned text table (one column per series), the
/// way EXPERIMENTS.md records it.
pub fn print_figure(title: &str, series: &[Series]) {
    println!("\n== {title} ==");
    print!("{:>5}", "CPUs");
    for s in series {
        print!("  {:>28}", s.name);
    }
    println!();
    let rows = series[0].rows.len();
    for i in 0..rows {
        print!("{:>5}", series[0].rows[i].cpus);
        for s in series {
            let r = &s.rows[i];
            print!("  {:>17.2}x ({:>6} cf)", r.speedup, r.conflicts);
        }
        println!();
    }
}

/// Compute speedups for a set of `(cpus, commits, makespan, conflicts)`
/// measurements against a baseline throughput.
pub fn to_series(
    name: &str,
    baseline_throughput: f64,
    points: Vec<(usize, u64, u64, u64)>,
) -> Series {
    Series {
        name: name.to_string(),
        rows: points
            .into_iter()
            .map(|(cpus, commits, makespan, conflicts)| SeriesRow {
                cpus,
                speedup: (commits as f64 / makespan.max(1) as f64) / baseline_throughput,
                commits,
                conflicts,
                makespan,
            })
            .collect(),
    }
}

/// Throughput (txns per cycle) of one measurement.
pub fn throughput(commits: u64, makespan: u64) -> f64 {
    commits as f64 / makespan.max(1) as f64
}
